//===- core/CompiledProgram.h - Per-analysis compiled artifact --*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiled-program layer of the analysis engine: everything about the
/// inequality system of §4.3 that does not change while the fixpoint is
/// iterated, computed once per (graph, domain) pair.
///
///  * **Edge transformers.** `Dom.interpret(act)` abstracts a `seq` edge's
///    data action into the domain. The result depends only on the edge, so
///    a CompiledProgram evaluates it at most once per edge and caches it
///    indexed by hyper-edge id — the *interpret-cache invariant*. The
///    monolithic solver used to re-interpret on every node update, which
///    for LEIA meant rebuilding the same polyhedra thousands of times per
///    fixpoint. Cache slots guard their first fill with a `std::once_flag`,
///    so concurrent transformer() calls (parallel SCC workers, a
///    precompile racing a sequential solve) are safe for any domain whose
///    interpret is thread-safe, and the invariant holds under concurrency:
///    exactly one interpret per edge, ever.
///  * **Precompilation.** precompile() interprets every `seq` edge up
///    front. Interpreting edges is embarrassingly parallel — for LEIA and
///    BI each interpret builds polyhedra/matrices from scratch — so when
///    given a thread pool and a `ThreadSafeInterpret` domain it fans the
///    edges out with parallelFor; otherwise it fills the cache
///    sequentially. The lazy transformer() path remains for sequential
///    use.
///  * **Right-hand sides.** evalRhs() evaluates one inequality of the
///    system against a value vector, using the cached transformers; no
///    later layer walks the AST.
///  * **Dependents.** The dependence graph of Eqn 2 as successor lists
///    (dependents(u) = nodes whose right-hand side reads u), precomputed
///    from cfg::HyperGraph for the worklist scheduler and for the WTO.
///  * **Iteration order.** The WTO of the dependence graph rooted at the
///    procedure exits, with two derived artifacts: the widening-operator
///    kind per widening point (the kinds of the component's guard edges,
///    under the precedence ndet ▷ prob ▷ cond — see wideningKinds()),
///    and the per-component conflict-free batch plans
///    of the intra-component parallel scheduler (built lazily; only
///    `--strategy=parallel-intra` pays for them).
///
/// A CompiledProgram may be reused across repeated solve() calls over the
/// same domain instance (the transformer cache then persists, which is
/// what the bench harnesses want when timing re-analyses).
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_CORE_COMPILEDPROGRAM_H
#define PMAF_CORE_COMPILEDPROGRAM_H

#include "cfg/HyperGraph.h"
#include "cfg/Wto.h"
#include "core/Domain.h"
#include "core/Instrumentation.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

namespace pmaf {
namespace core {

/// A program compiled against a domain: cached `seq`-edge transformers,
/// right-hand-side evaluation, and the dependence structure of Eqn 2.
template <PreMarkovAlgebra D> class CompiledProgram {
public:
  using Value = typename D::Value;

  CompiledProgram(const cfg::ProgramGraph &Graph, D &Dom,
                  SolverObserver *Observer = nullptr)
      : Graph(Graph), Dom(Dom), Observer(Observer),
        Dependents(Graph.dependenceSuccessors()),
        Transformers(Graph.edges().size()) {
    // Iteration order: WTO of the dependence graph, rooted at the exits
    // so that values flow leaf-to-root (§2.3). Invariant across solves.
    std::vector<unsigned> Roots;
    for (unsigned P = 0; P != Graph.numProcs(); ++P)
      Roots.push_back(Graph.proc(P).Exit);
    Order = cfg::Wto::compute(Dependents, Roots);
    computeWideningKinds();
  }

  const cfg::ProgramGraph &graph() const { return Graph; }
  D &domain() { return Dom; }

  /// Redirects event reporting (nullptr silences it). The solver facade
  /// points this at the observer of the current solve.
  void setObserver(SolverObserver *NewObserver) { Observer = NewObserver; }

  /// Dependence successors (Eqn 2): dependents()[u] lists the nodes whose
  /// inequality right-hand side mentions S(u).
  const std::vector<std::vector<unsigned>> &dependents() const {
    return Dependents;
  }

  /// The WTO every solve over this program iterates by (§4.4): computed
  /// over the dependence graph, rooted at the procedure exits.
  const cfg::Wto &wto() const { return Order; }

  /// The widening-operator kind per node: for a widening point, the
  /// control-action kind that selects the operator at `old ∇ new`. A
  /// component may be guarded by several branch kinds at once (a head can
  /// close a conditional loop that also exits through a probabilistic
  /// `break`), and which guard the head's own outgoing edge happens to be
  /// is an accident of DFS order — so the kind is chosen from the
  /// component's *guards* (branch edges with one destination inside the
  /// component and one outside: the decisions that can re-enter the loop
  /// or leave it) under the precedence ndet ▷ prob ▷ cond, falling back
  /// to Call (the recursion-cut operator) for guard-free cycles. Branches
  /// wholly inside the body — both arms continue around the loop — do not
  /// guard it and must not influence the operator: Ex 5.8's conditional
  /// loop around an internal probabilistic branch still needs the
  /// pessimistic conditional widening to stabilize. This keeps Obs 4.9
  /// (old ⊑ new at every widening) while making the operator a function
  /// of the component, not of edge storage order.
  const std::vector<cfg::ControlAction::Kind> &wideningKinds() const {
    return WideningKinds;
  }

  /// Conflict-free intra-component batch plans (the ParallelIntra
  /// scheduler's schedule), indexed by component-head node id. Built on
  /// first request — only parallel-intra solves pay — and safe against
  /// concurrent first requests.
  const std::vector<cfg::IntraComponentPlan> &intraPlans() {
    std::call_once(IntraPlansOnce, [&] {
      IntraPlans = cfg::computeIntraPlans(Order, Dependents);
    });
    return IntraPlans;
  }

  /// The abstract transformer of `seq` hyper-edge \p EdgeIndex; interprets
  /// the edge's data action on first request and serves the cached value
  /// afterwards. Concurrent first requests are serialized per slot, so
  /// exactly one thread interprets and the rest observe a cache hit; with
  /// a thread pool in play, onInterpret may fire from worker threads.
  const Value &transformer(unsigned EdgeIndex) {
    Slot &S = Transformers[EdgeIndex];
    bool Interpreted = false;
    std::call_once(S.Once, [&] {
      assert(Graph.edges()[EdgeIndex].Ctrl.TheKind ==
                 cfg::ControlAction::Kind::Seq &&
             "only seq edges carry data actions");
      S.Stored.emplace(
          Dom.interpret(Graph.edges()[EdgeIndex].Ctrl.DataAction));
      Interpreted = true;
    });
    if (Interpreted) {
      InterpretCallCount.fetch_add(1, std::memory_order_relaxed);
      if (Observer)
        Observer->onInterpret(EdgeIndex, /*CacheHit=*/false);
    } else {
      InterpretCacheHitCount.fetch_add(1, std::memory_order_relaxed);
      if (Observer)
        Observer->onInterpret(EdgeIndex, /*CacheHit=*/true);
    }
    return *S.Stored;
  }

  /// Adopts an already-computed transformer for `seq` edge \p EdgeIndex
  /// without calling Dom.interpret — the incremental-server hook: after an
  /// edit rebuilds the graph, transformers of edges in *unchanged*
  /// procedures are copied over from the previous CompiledProgram (they
  /// are pure functions of the edge's data action and the variable table,
  /// both unchanged). Goes through the slot's once_flag, so it composes
  /// with concurrent transformer()/precompile() calls and is a no-op when
  /// the slot is already filled. \returns true when this call filled the
  /// slot.
  bool seedTransformer(unsigned EdgeIndex, Value V) {
    Slot &S = Transformers[EdgeIndex];
    bool Seeded = false;
    std::call_once(S.Once, [&] {
      assert(Graph.edges()[EdgeIndex].Ctrl.TheKind ==
                 cfg::ControlAction::Kind::Seq &&
             "only seq edges carry transformers");
      S.Stored.emplace(std::move(V));
      Seeded = true;
    });
    if (Seeded)
      SeededTransformerCount.fetch_add(1, std::memory_order_relaxed);
    return Seeded;
  }

  /// The cached transformer of \p EdgeIndex when its slot is filled,
  /// nullptr otherwise. Read-only: never triggers an interpret and never
  /// counts as cache traffic. Callers must not race this against a
  /// concurrent first fill of the same slot (the server's session lock
  /// serializes edits against solves).
  const Value *peekTransformer(unsigned EdgeIndex) const {
    const Slot &S = Transformers[EdgeIndex];
    return S.Stored ? &*S.Stored : nullptr;
  }

  /// Transformer slots filled by seedTransformer (adopted from a prior
  /// compiled program) rather than by Dom.interpret.
  uint64_t seededTransformers() const {
    return SeededTransformerCount.load(std::memory_order_relaxed);
  }

  /// Fills the transformer cache for every `seq` edge up front, in
  /// parallel over \p Pool when the domain declares ThreadSafeInterpret
  /// (sequentially otherwise, or when \p Pool is null). Idempotent — edges
  /// an earlier solve already interpreted are cache hits — and safe to
  /// race against concurrent transformer() calls. \returns the number of
  /// `seq` edges in the program (filled slots, not fresh interprets).
  unsigned precompile(support::ThreadPool *Pool = nullptr) {
    std::vector<unsigned> SeqEdges;
    const auto &Edges = Graph.edges();
    for (unsigned E = 0; E != Edges.size(); ++E)
      if (Edges[E].Ctrl.TheKind == cfg::ControlAction::Kind::Seq)
        SeqEdges.push_back(E);
    if constexpr (threadSafeInterpret<D>()) {
      if (Pool) {
        // Bracket the fan-out for domains with parallel-phase hooks.
        // solve() already holds an outer bracket around its precompile;
        // brackets nest, so this also covers standalone precompilation.
        ParallelPhase<D> Phase(Dom, Pool->size() + 1, true);
        Pool->parallelFor(0, SeqEdges.size(),
                          [&](size_t I) { transformer(SeqEdges[I]); });
        return static_cast<unsigned>(SeqEdges.size());
      }
    }
    for (unsigned E : SeqEdges)
      transformer(E);
    return static_cast<unsigned>(SeqEdges.size());
  }

  /// Right-hand side of node \p V's inequality (§4.3), evaluated against
  /// the value vector \p S. \p V must not be an exit node.
  Value evalRhs(unsigned V, const std::vector<Value> &S) {
    const cfg::HyperEdge *Edge = Graph.outgoing(V);
    assert(Edge && "exit nodes are constant");
    switch (Edge->Ctrl.TheKind) {
    case cfg::ControlAction::Kind::Seq:
      return Dom.extend(
          transformer(static_cast<unsigned>(Graph.outgoingIndex(V))),
          S[Edge->Dsts[0]]);
    case cfg::ControlAction::Kind::Call:
      return Dom.extend(S[Graph.proc(Edge->Ctrl.Callee).Entry],
                        S[Edge->Dsts[0]]);
    case cfg::ControlAction::Kind::Cond:
      return Dom.condChoice(*Edge->Ctrl.Phi, S[Edge->Dsts[0]],
                            S[Edge->Dsts[1]]);
    case cfg::ControlAction::Kind::Prob:
      return Dom.probChoice(Edge->Ctrl.Prob, S[Edge->Dsts[0]],
                            S[Edge->Dsts[1]]);
    case cfg::ControlAction::Kind::Ndet:
      return Dom.ndetChoice(S[Edge->Dsts[0]], S[Edge->Dsts[1]]);
    }
    assert(false && "unknown control action");
    return Dom.bottom();
  }

  /// Lifetime totals of the transformer cache (across every solve this
  /// compiled program served).
  uint64_t interpretCalls() const {
    return InterpretCallCount.load(std::memory_order_relaxed);
  }
  uint64_t interpretCacheHits() const {
    return InterpretCacheHitCount.load(std::memory_order_relaxed);
  }

private:
  /// A transformer cache slot; the once_flag makes the first fill safe
  /// against concurrent requests (call_once publishes Stored).
  struct Slot {
    std::once_flag Once;
    std::optional<Value> Stored;
  };

  /// Rank of a control-action kind in the widening-operator precedence
  /// (higher wins); seq/call rank 0 so a branch kind always dominates.
  static int branchPrecedence(cfg::ControlAction::Kind K) {
    switch (K) {
    case cfg::ControlAction::Kind::Ndet:
      return 3;
    case cfg::ControlAction::Kind::Prob:
      return 2;
    case cfg::ControlAction::Kind::Cond:
      return 1;
    case cfg::ControlAction::Kind::Seq:
    case cfg::ControlAction::Kind::Call:
      return 0;
    }
    return 0;
  }

  void computeWideningKinds() {
    // Non-heads default to their own outgoing kind (only heads are ever
    // consulted through the widening path); exits keep Seq.
    WideningKinds.assign(Graph.numNodes(), cfg::ControlAction::Kind::Seq);
    for (unsigned V = 0; V != Graph.numNodes(); ++V)
      if (const cfg::HyperEdge *Edge = Graph.outgoing(V))
        WideningKinds[V] = Edge->Ctrl.TheKind;
    std::vector<char> InComponent(Graph.numNodes(), 0);
    for (const cfg::WtoElement &Element : Order.Elements)
      assignComponentKind(Element, InComponent);
  }

  void assignComponentKind(const cfg::WtoElement &Element,
                           std::vector<char> &InComponent) {
    if (!Element.IsComponent)
      return;
    std::vector<unsigned> Members;
    auto Collect = [&](auto &&Self, const cfg::WtoElement &E) -> void {
      Members.push_back(E.Node);
      InComponent[E.Node] = 1;
      for (const cfg::WtoElement &Child : E.Body)
        Self(Self, Child);
    };
    Collect(Collect, Element);
    // A guard is a member branch with one arm back into this component
    // and one arm out of it — the decision that re-enters or leaves the
    // loop. Branches wholly inside the body (including the guards of
    // nested sub-components, whose exits continue around THIS loop) do
    // not qualify.
    int Best = 0;
    cfg::ControlAction::Kind BestKind = cfg::ControlAction::Kind::Call;
    for (unsigned M : Members) {
      const cfg::HyperEdge *Edge = Graph.outgoing(M);
      if (!Edge || Edge->Dsts.size() < 2)
        continue;
      bool Inside = false, Outside = false;
      for (unsigned Dst : Edge->Dsts)
        (InComponent[Dst] ? Inside : Outside) = true;
      if (!Inside || !Outside)
        continue;
      int Rank = branchPrecedence(Edge->Ctrl.TheKind);
      if (Rank > Best) {
        Best = Rank;
        BestKind = Edge->Ctrl.TheKind;
      }
    }
    WideningKinds[Element.Node] = BestKind;
    for (unsigned M : Members)
      InComponent[M] = 0;
    for (const cfg::WtoElement &Child : Element.Body)
      assignComponentKind(Child, InComponent);
  }

  const cfg::ProgramGraph &Graph;
  D &Dom;
  SolverObserver *Observer = nullptr;
  std::vector<std::vector<unsigned>> Dependents;
  std::vector<Slot> Transformers;
  cfg::Wto Order;
  std::vector<cfg::ControlAction::Kind> WideningKinds;
  std::once_flag IntraPlansOnce;
  std::vector<cfg::IntraComponentPlan> IntraPlans;
  std::atomic<uint64_t> InterpretCallCount{0};
  std::atomic<uint64_t> InterpretCacheHitCount{0};
  std::atomic<uint64_t> SeededTransformerCount{0};
};

} // namespace core
} // namespace pmaf

#endif // PMAF_CORE_COMPILEDPROGRAM_H
