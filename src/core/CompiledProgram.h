//===- core/CompiledProgram.h - Per-analysis compiled artifact --*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiled-program layer of the analysis engine: everything about the
/// inequality system of §4.3 that does not change while the fixpoint is
/// iterated, computed once per (graph, domain) pair.
///
///  * **Edge transformers.** `Dom.interpret(act)` abstracts a `seq` edge's
///    data action into the domain. The result depends only on the edge, so
///    a CompiledProgram evaluates it at most once per edge and caches it
///    indexed by hyper-edge id — the *interpret-cache invariant*. The
///    monolithic solver used to re-interpret on every node update, which
///    for LEIA meant rebuilding the same polyhedra thousands of times per
///    fixpoint. Cache slots guard their first fill with a `std::once_flag`,
///    so concurrent transformer() calls (parallel SCC workers, a
///    precompile racing a sequential solve) are safe for any domain whose
///    interpret is thread-safe, and the invariant holds under concurrency:
///    exactly one interpret per edge, ever.
///  * **Precompilation.** precompile() interprets every `seq` edge up
///    front. Interpreting edges is embarrassingly parallel — for LEIA and
///    BI each interpret builds polyhedra/matrices from scratch — so when
///    given a thread pool and a `ThreadSafeInterpret` domain it fans the
///    edges out with parallelFor; otherwise it fills the cache
///    sequentially. The lazy transformer() path remains for sequential
///    use.
///  * **Right-hand sides.** evalRhs() evaluates one inequality of the
///    system against a value vector, using the cached transformers; no
///    later layer walks the AST.
///  * **Dependents.** The dependence graph of Eqn 2 as successor lists
///    (dependents(u) = nodes whose right-hand side reads u), precomputed
///    from cfg::HyperGraph for the worklist scheduler and for the WTO.
///
/// A CompiledProgram may be reused across repeated solve() calls over the
/// same domain instance (the transformer cache then persists, which is
/// what the bench harnesses want when timing re-analyses).
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_CORE_COMPILEDPROGRAM_H
#define PMAF_CORE_COMPILEDPROGRAM_H

#include "cfg/HyperGraph.h"
#include "core/Domain.h"
#include "core/Instrumentation.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

namespace pmaf {
namespace core {

/// A program compiled against a domain: cached `seq`-edge transformers,
/// right-hand-side evaluation, and the dependence structure of Eqn 2.
template <PreMarkovAlgebra D> class CompiledProgram {
public:
  using Value = typename D::Value;

  CompiledProgram(const cfg::ProgramGraph &Graph, D &Dom,
                  SolverObserver *Observer = nullptr)
      : Graph(Graph), Dom(Dom), Observer(Observer),
        Dependents(Graph.dependenceSuccessors()),
        Transformers(Graph.edges().size()) {}

  const cfg::ProgramGraph &graph() const { return Graph; }
  D &domain() { return Dom; }

  /// Redirects event reporting (nullptr silences it). The solver facade
  /// points this at the observer of the current solve.
  void setObserver(SolverObserver *NewObserver) { Observer = NewObserver; }

  /// Dependence successors (Eqn 2): dependents()[u] lists the nodes whose
  /// inequality right-hand side mentions S(u).
  const std::vector<std::vector<unsigned>> &dependents() const {
    return Dependents;
  }

  /// The abstract transformer of `seq` hyper-edge \p EdgeIndex; interprets
  /// the edge's data action on first request and serves the cached value
  /// afterwards. Concurrent first requests are serialized per slot, so
  /// exactly one thread interprets and the rest observe a cache hit; with
  /// a thread pool in play, onInterpret may fire from worker threads.
  const Value &transformer(unsigned EdgeIndex) {
    Slot &S = Transformers[EdgeIndex];
    bool Interpreted = false;
    std::call_once(S.Once, [&] {
      assert(Graph.edges()[EdgeIndex].Ctrl.TheKind ==
                 cfg::ControlAction::Kind::Seq &&
             "only seq edges carry data actions");
      S.Stored.emplace(
          Dom.interpret(Graph.edges()[EdgeIndex].Ctrl.DataAction));
      Interpreted = true;
    });
    if (Interpreted) {
      InterpretCallCount.fetch_add(1, std::memory_order_relaxed);
      if (Observer)
        Observer->onInterpret(EdgeIndex, /*CacheHit=*/false);
    } else {
      InterpretCacheHitCount.fetch_add(1, std::memory_order_relaxed);
      if (Observer)
        Observer->onInterpret(EdgeIndex, /*CacheHit=*/true);
    }
    return *S.Stored;
  }

  /// Fills the transformer cache for every `seq` edge up front, in
  /// parallel over \p Pool when the domain declares ThreadSafeInterpret
  /// (sequentially otherwise, or when \p Pool is null). Idempotent — edges
  /// an earlier solve already interpreted are cache hits — and safe to
  /// race against concurrent transformer() calls. \returns the number of
  /// `seq` edges in the program (filled slots, not fresh interprets).
  unsigned precompile(support::ThreadPool *Pool = nullptr) {
    std::vector<unsigned> SeqEdges;
    const auto &Edges = Graph.edges();
    for (unsigned E = 0; E != Edges.size(); ++E)
      if (Edges[E].Ctrl.TheKind == cfg::ControlAction::Kind::Seq)
        SeqEdges.push_back(E);
    if constexpr (threadSafeInterpret<D>()) {
      if (Pool) {
        // Bracket the fan-out for domains with parallel-phase hooks.
        // solve() already holds an outer bracket around its precompile;
        // brackets nest, so this also covers standalone precompilation.
        ParallelPhase<D> Phase(Dom, Pool->size() + 1, true);
        Pool->parallelFor(0, SeqEdges.size(),
                          [&](size_t I) { transformer(SeqEdges[I]); });
        return static_cast<unsigned>(SeqEdges.size());
      }
    }
    for (unsigned E : SeqEdges)
      transformer(E);
    return static_cast<unsigned>(SeqEdges.size());
  }

  /// Right-hand side of node \p V's inequality (§4.3), evaluated against
  /// the value vector \p S. \p V must not be an exit node.
  Value evalRhs(unsigned V, const std::vector<Value> &S) {
    const cfg::HyperEdge *Edge = Graph.outgoing(V);
    assert(Edge && "exit nodes are constant");
    switch (Edge->Ctrl.TheKind) {
    case cfg::ControlAction::Kind::Seq:
      return Dom.extend(
          transformer(static_cast<unsigned>(Graph.outgoingIndex(V))),
          S[Edge->Dsts[0]]);
    case cfg::ControlAction::Kind::Call:
      return Dom.extend(S[Graph.proc(Edge->Ctrl.Callee).Entry],
                        S[Edge->Dsts[0]]);
    case cfg::ControlAction::Kind::Cond:
      return Dom.condChoice(*Edge->Ctrl.Phi, S[Edge->Dsts[0]],
                            S[Edge->Dsts[1]]);
    case cfg::ControlAction::Kind::Prob:
      return Dom.probChoice(Edge->Ctrl.Prob, S[Edge->Dsts[0]],
                            S[Edge->Dsts[1]]);
    case cfg::ControlAction::Kind::Ndet:
      return Dom.ndetChoice(S[Edge->Dsts[0]], S[Edge->Dsts[1]]);
    }
    assert(false && "unknown control action");
    return Dom.bottom();
  }

  /// Lifetime totals of the transformer cache (across every solve this
  /// compiled program served).
  uint64_t interpretCalls() const {
    return InterpretCallCount.load(std::memory_order_relaxed);
  }
  uint64_t interpretCacheHits() const {
    return InterpretCacheHitCount.load(std::memory_order_relaxed);
  }

private:
  /// A transformer cache slot; the once_flag makes the first fill safe
  /// against concurrent requests (call_once publishes Stored).
  struct Slot {
    std::once_flag Once;
    std::optional<Value> Stored;
  };

  const cfg::ProgramGraph &Graph;
  D &Dom;
  SolverObserver *Observer = nullptr;
  std::vector<std::vector<unsigned>> Dependents;
  std::vector<Slot> Transformers;
  std::atomic<uint64_t> InterpretCallCount{0};
  std::atomic<uint64_t> InterpretCacheHitCount{0};
};

} // namespace core
} // namespace pmaf

#endif // PMAF_CORE_COMPILEDPROGRAM_H
