//===- core/CompiledProgram.h - Per-analysis compiled artifact --*- C++ -*-===//
//
// Part of the PMAF reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiled-program layer of the analysis engine: everything about the
/// inequality system of §4.3 that does not change while the fixpoint is
/// iterated, computed once per (graph, domain) pair.
///
///  * **Edge transformers.** `Dom.interpret(act)` abstracts a `seq` edge's
///    data action into the domain. The result depends only on the edge, so
///    a CompiledProgram evaluates it at most once per edge and caches it
///    indexed by hyper-edge id — the *interpret-cache invariant*. The
///    monolithic solver used to re-interpret on every node update, which
///    for LEIA meant rebuilding the same polyhedra thousands of times per
///    fixpoint.
///  * **Right-hand sides.** evalRhs() evaluates one inequality of the
///    system against a value vector, using the cached transformers; no
///    later layer walks the AST.
///  * **Dependents.** The dependence graph of Eqn 2 as successor lists
///    (dependents(u) = nodes whose right-hand side reads u), precomputed
///    from cfg::HyperGraph for the worklist scheduler and for the WTO.
///
/// A CompiledProgram may be reused across repeated solve() calls over the
/// same domain instance (the transformer cache then persists, which is
/// what the bench harnesses want when timing re-analyses).
///
//===----------------------------------------------------------------------===//

#ifndef PMAF_CORE_COMPILEDPROGRAM_H
#define PMAF_CORE_COMPILEDPROGRAM_H

#include "cfg/HyperGraph.h"
#include "core/Domain.h"
#include "core/Instrumentation.h"

#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

namespace pmaf {
namespace core {

/// A program compiled against a domain: cached `seq`-edge transformers,
/// right-hand-side evaluation, and the dependence structure of Eqn 2.
template <PreMarkovAlgebra D> class CompiledProgram {
public:
  using Value = typename D::Value;

  CompiledProgram(const cfg::ProgramGraph &Graph, D &Dom,
                  SolverObserver *Observer = nullptr)
      : Graph(Graph), Dom(Dom), Observer(Observer),
        Dependents(Graph.dependenceSuccessors()),
        Transformers(Graph.edges().size()) {}

  const cfg::ProgramGraph &graph() const { return Graph; }
  D &domain() { return Dom; }

  /// Redirects event reporting (nullptr silences it). The solver facade
  /// points this at the observer of the current solve.
  void setObserver(SolverObserver *NewObserver) { Observer = NewObserver; }

  /// Dependence successors (Eqn 2): dependents()[u] lists the nodes whose
  /// inequality right-hand side mentions S(u).
  const std::vector<std::vector<unsigned>> &dependents() const {
    return Dependents;
  }

  /// The abstract transformer of `seq` hyper-edge \p EdgeIndex; interprets
  /// the edge's data action on first request and serves the cached value
  /// afterwards.
  const Value &transformer(unsigned EdgeIndex) {
    std::optional<Value> &Slot = Transformers[EdgeIndex];
    if (!Slot) {
      assert(Graph.edges()[EdgeIndex].Ctrl.TheKind ==
                 cfg::ControlAction::Kind::Seq &&
             "only seq edges carry data actions");
      Slot.emplace(Dom.interpret(Graph.edges()[EdgeIndex].Ctrl.DataAction));
      ++InterpretCallCount;
      if (Observer)
        Observer->onInterpret(EdgeIndex, /*CacheHit=*/false);
    } else {
      ++InterpretCacheHitCount;
      if (Observer)
        Observer->onInterpret(EdgeIndex, /*CacheHit=*/true);
    }
    return *Slot;
  }

  /// Right-hand side of node \p V's inequality (§4.3), evaluated against
  /// the value vector \p S. \p V must not be an exit node.
  Value evalRhs(unsigned V, const std::vector<Value> &S) {
    const cfg::HyperEdge *Edge = Graph.outgoing(V);
    assert(Edge && "exit nodes are constant");
    switch (Edge->Ctrl.TheKind) {
    case cfg::ControlAction::Kind::Seq:
      return Dom.extend(
          transformer(static_cast<unsigned>(Graph.outgoingIndex(V))),
          S[Edge->Dsts[0]]);
    case cfg::ControlAction::Kind::Call:
      return Dom.extend(S[Graph.proc(Edge->Ctrl.Callee).Entry],
                        S[Edge->Dsts[0]]);
    case cfg::ControlAction::Kind::Cond:
      return Dom.condChoice(*Edge->Ctrl.Phi, S[Edge->Dsts[0]],
                            S[Edge->Dsts[1]]);
    case cfg::ControlAction::Kind::Prob:
      return Dom.probChoice(Edge->Ctrl.Prob, S[Edge->Dsts[0]],
                            S[Edge->Dsts[1]]);
    case cfg::ControlAction::Kind::Ndet:
      return Dom.ndetChoice(S[Edge->Dsts[0]], S[Edge->Dsts[1]]);
    }
    assert(false && "unknown control action");
    return Dom.bottom();
  }

  /// Lifetime totals of the transformer cache (across every solve this
  /// compiled program served).
  uint64_t interpretCalls() const { return InterpretCallCount; }
  uint64_t interpretCacheHits() const { return InterpretCacheHitCount; }

private:
  const cfg::ProgramGraph &Graph;
  D &Dom;
  SolverObserver *Observer = nullptr;
  std::vector<std::vector<unsigned>> Dependents;
  std::vector<std::optional<Value>> Transformers;
  uint64_t InterpretCallCount = 0;
  uint64_t InterpretCacheHitCount = 0;
};

} // namespace core
} // namespace pmaf

#endif // PMAF_CORE_COMPILEDPROGRAM_H
