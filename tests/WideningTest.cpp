//===- tests/WideningTest.cpp - §4.4 widening safety properties -----------===//
//
// Checks the safety properties §4.4 demands of the three widening
// operators — chains widened with each operator are eventually stable —
// and the coverage property that makes widening sound (the result
// over-approximates both arguments where the domain guarantees it).
//
//===----------------------------------------------------------------------===//

#include "cfg/HyperGraph.h"
#include "core/Solver.h"
#include "domains/LeiaDomain.h"
#include "domains/MdpDomain.h"
#include "lang/Parser.h"
#include "poly/Polyhedron.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

using namespace pmaf;
using namespace pmaf::domains;
using namespace pmaf::poly;

namespace {

LinearExpr var(unsigned Dim, unsigned I) {
  return LinearExpr::variable(Dim, I);
}
LinearExpr cst(unsigned Dim, int64_t V) {
  return LinearExpr::constant(Dim, Rational(V));
}

} // namespace

//===----------------------------------------------------------------------===//
// Polyhedra widening (the substrate of the LEIA operators)
//===----------------------------------------------------------------------===//

TEST(WideningTest, PolyhedronWideningCoversBothArguments) {
  // The CH78 widening keeps a subset of the first argument's constraints,
  // so it always contains both operands (even without a ⊑ b).
  Polyhedron A = Polyhedron::fromConstraints(
      2, {Constraint::ge(var(2, 0), cst(2, 0)),
          Constraint::le(var(2, 0), cst(2, 1)),
          Constraint::eq(var(2, 1), var(2, 0))});
  Polyhedron B = Polyhedron::fromConstraints(
      2, {Constraint::ge(var(2, 0), cst(2, 0)),
          Constraint::le(var(2, 0), cst(2, 5)),
          Constraint::le(var(2, 1), var(2, 0))});
  Polyhedron W = A.widen(B);
  EXPECT_TRUE(W.contains(A));
  EXPECT_TRUE(W.contains(B));
}

TEST(WideningTest, PolyhedronWideningChainStabilizes) {
  // a_k = [0, 2^k] x [0, k]: growing in two directions at different
  // rates; the widened chain must stabilize in few steps.
  auto Box = [](int64_t W, int64_t H) {
    return Polyhedron::fromConstraints(
        2, {Constraint::ge(var(2, 0), cst(2, 0)),
            Constraint::le(var(2, 0), cst(2, W)),
            Constraint::ge(var(2, 1), cst(2, 0)),
            Constraint::le(var(2, 1), cst(2, H))});
  };
  Polyhedron Current = Box(1, 1);
  int StableAt = -1;
  for (int K = 2; K <= 20; ++K) {
    Polyhedron Next = Current.widen(Current.join(Box(1 << K, K)));
    if (Next.equals(Current)) {
      StableAt = K;
      break;
    }
    Current = Next;
  }
  EXPECT_GE(StableAt, 0) << "widened chain did not stabilize";
  EXPECT_LE(StableAt, 4);
  // The stable limit keeps the stable lower bounds.
  EXPECT_TRUE(Current.satisfies(Constraint::ge(var(2, 0), cst(2, 0))));
  EXPECT_TRUE(Current.satisfies(Constraint::ge(var(2, 1), cst(2, 0))));
}

//===----------------------------------------------------------------------===//
// MDP widening (§5.2's trivial jump to infinity)
//===----------------------------------------------------------------------===//

TEST(WideningTest, MdpWideningChainsStabilize) {
  MdpDomain Dom;
  // Strictly growing chain (the re-evaluated right-hand side grows from
  // the current value, as in the solver): one widening application jumps
  // to +inf, after which everything is stable.
  double Current = 0.0;
  int Steps = 0;
  while (true) {
    double Next = Current + 1.0; // rhs re-evaluation (Obs 4.9: old ⊑ new)
    double Widened = Dom.widenNdet(Current, Next);
    ++Steps;
    if (Dom.equal(Widened, Current))
      break;
    Current = Widened;
    ASSERT_LT(Steps, 5);
  }
  EXPECT_TRUE(std::isinf(Current));
  // A converging chain is left untouched (no precision loss).
  EXPECT_DOUBLE_EQ(Dom.widenProb(1.0, 1.0 + 1e-14), 1.0 + 1e-14);
}

//===----------------------------------------------------------------------===//
// LEIA widenings (§5.3)
//===----------------------------------------------------------------------===//

namespace {

struct LeiaFixture {
  std::unique_ptr<lang::Program> Prog =
      lang::parseProgramOrDie("real x, y; proc main() { skip; }");
  LeiaDomain Dom{*Prog};

  LeiaValue action(const char *Text) {
    std::string Source =
        std::string("real x, y; proc main() { ") + Text + " }";
    auto P = lang::parseProgramOrDie(Source);
    return Dom.interpret(P->Procs[0].Body->stmts()[0].get());
  }
};

} // namespace

TEST(WideningTest, LeiaCondWideningIsPessimisticPerObservation57) {
  // Obs 5.7: the conditional widening must forget body expectation
  // equalities, rebuilding EP from the (widened) support.
  LeiaFixture F;
  LeiaValue Inc = F.action("x := x + 1;");
  LeiaValue More = F.Dom.ndetChoice(Inc, F.action("x := x + 2;"));
  LeiaValue W = F.Dom.widenCond(Inc, F.Dom.ndetChoice(Inc, More));
  // The result's EP is the subprobability cone of the widened support: it
  // must contain the zero expectation (mass loss) for any pre-state.
  EXPECT_FALSE(W.P.isEmpty());
  auto [Lo, Hi] = F.Dom.expectationBounds(W, {Rational(1), Rational(0)},
                                          {Rational(5), Rational(0)});
  ASSERT_TRUE(Lo.has_value());
  EXPECT_EQ(*Lo, Rational(0)); // 0 ⊔ ... always includes zero mass.
}

TEST(WideningTest, LeiaCondWideningChainStabilizes) {
  LeiaFixture F;
  // Ascending chain a_k = ndet-join of ever-larger increments.
  LeiaValue Current = F.action("x := x + 1;");
  std::vector<LeiaValue> Chain;
  for (int K = 2; K <= 12; ++K)
    Chain.push_back(F.action(("x := x + " + std::to_string(K) + ";")
                                 .c_str()));
  LeiaValue Acc = Current;
  int StableAt = -1;
  for (int K = 0; K != static_cast<int>(Chain.size()); ++K) {
    Acc = F.Dom.ndetChoice(Acc, Chain[K]);
    LeiaValue Next = F.Dom.widenCond(Current, F.Dom.ndetChoice(Current, Acc));
    if (F.Dom.equal(Next, Current)) {
      StableAt = K;
      break;
    }
    Current = Next;
  }
  EXPECT_GE(StableAt, 0) << "widened LEIA chain did not stabilize";
  EXPECT_LE(StableAt, 5);
}

TEST(WideningTest, LeiaWideningsCoverTheSupportOfBothArguments) {
  LeiaFixture F;
  LeiaValue A = F.action("x := x + 1;");
  LeiaValue B = F.Dom.ndetChoice(A, F.action("y := y + 3;"));
  for (auto WidenOp : {&LeiaDomain::widenCond, &LeiaDomain::widenProb,
                       &LeiaDomain::widenNdet, &LeiaDomain::widenCall}) {
    LeiaValue W = (F.Dom.*WidenOp)(A, B);
    EXPECT_TRUE(W.P.contains(A.P));
    EXPECT_TRUE(W.P.contains(B.P));
  }
}

TEST(WideningTest, LeiaProbWideningKeepsNewExpectations) {
  // §5.3: the probabilistic widening "does no extrapolation in the EP
  // component" — the new iterate's expectations survive verbatim.
  LeiaFixture F;
  LeiaValue A = F.action("x := x + 1;");
  LeiaValue B = F.Dom.probChoice(Rational(1, 2), A,
                                 F.action("x := x + 3;"));
  LeiaValue W = F.Dom.widenProb(A, B);
  auto [Lo, Hi] = F.Dom.expectationBounds(W, {Rational(1), Rational(0)},
                                          {Rational(1), Rational(0)});
  ASSERT_TRUE(Lo && Hi);
  EXPECT_EQ(*Lo, Rational(3)); // E[x'] = 1 + (1/2)(1) + (1/2)(3) = 3.
  EXPECT_EQ(*Hi, Rational(3));
}

TEST(WideningTest, GeometricLoopChainStabilizesUnderProbWidening) {
  // The fixpoint chain of `while prob(3/4) { x := x + 1 }` widened at the
  // head stabilizes in a bounded number of steps (the §6.1 tolerance
  // mechanism); the limit carries E[x'] ≈ x + 3.
  LeiaFixture F;
  LeiaValue K = F.action("x := x + 1;");
  LeiaValue Head = F.Dom.bottom();
  Rational P(3, 4);
  int Iterations = 0;
  while (true) {
    LeiaValue Body = F.Dom.extend(K, Head);
    LeiaValue Next = F.Dom.probChoice(P, Body, F.Dom.one());
    if (Iterations >= 2)
      Next = F.Dom.widenProb(Head, Next);
    ++Iterations;
    ASSERT_LT(Iterations, 300) << "chain did not stabilize";
    if (F.Dom.equal(Head, Next))
      break;
    Head = Next;
  }
  auto [Lo, Hi] = F.Dom.expectationBounds(Head, {Rational(1), Rational(0)},
                                          {Rational(2), Rational(0)});
  ASSERT_TRUE(Lo && Hi);
  EXPECT_NEAR(Lo->toDouble(), 5.0, 1e-6);
  EXPECT_NEAR(Hi->toDouble(), 5.0, 1e-6);
}

//===----------------------------------------------------------------------===//
// Widening-operator selection at component heads (§4.4)
//===----------------------------------------------------------------------===//

namespace {

/// A diverging test algebra whose only purpose is to observe WHICH
/// widening operator the solver applies at a component head. Iterates
/// grow by the number of sequenced statements per pass (extend = +,
/// choices = max), so every loop head climbs until widening fires; each
/// widenX records itself and jumps to +inf, after which the chain is
/// stable.
class WidenProbeDomain {
public:
  using Value = double;

  Value bottom() const { return 0.0; }
  Value one() const { return 0.0; } // Identity of extend (+).
  Value extend(const Value &A, const Value &B) const { return A + B; }
  Value condChoice(const lang::Cond &, const Value &A,
                   const Value &B) const {
    return std::max(A, B);
  }
  Value probChoice(const Rational &, const Value &A, const Value &B) const {
    return std::max(A, B);
  }
  Value ndetChoice(const Value &A, const Value &B) const {
    return std::max(A, B);
  }
  Value interpret(const lang::Stmt *) const { return 1.0; }
  bool leq(const Value &A, const Value &B) const { return A <= B + 1e-9; }
  bool equal(const Value &A, const Value &B) const {
    return A == B || std::fabs(A - B) <= 1e-9;
  }
  Value widenCond(const Value &, const Value &) const {
    ++CondWidenings;
    return std::numeric_limits<double>::infinity();
  }
  Value widenProb(const Value &, const Value &) const {
    ++ProbWidenings;
    return std::numeric_limits<double>::infinity();
  }
  Value widenNdet(const Value &, const Value &) const {
    ++NdetWidenings;
    return std::numeric_limits<double>::infinity();
  }
  Value widenCall(const Value &, const Value &) const {
    ++CallWidenings;
    return std::numeric_limits<double>::infinity();
  }
  std::string toString(const Value &A) const { return std::to_string(A); }
  static constexpr bool ThreadSafeInterpret = true;

  mutable unsigned CondWidenings = 0;
  mutable unsigned ProbWidenings = 0;
  mutable unsigned NdetWidenings = 0;
  mutable unsigned CallWidenings = 0;
};

static_assert(core::PreMarkovAlgebra<WidenProbeDomain>);

/// Solves \p Source under the probe and returns the domain carrying the
/// per-operator tallies.
WidenProbeDomain probeWidenings(const char *Source) {
  auto Prog = lang::parseProgramOrDie(Source);
  cfg::ProgramGraph G = cfg::ProgramGraph::build(*Prog);
  WidenProbeDomain Dom;
  core::SolverOptions Opts;
  Opts.WideningDelay = 2;
  auto Result = core::solve(G, Dom, Opts);
  EXPECT_TRUE(Result.Stats.Converged);
  return Dom;
}

} // namespace

TEST(WideningTest, ComponentHeadWideningFollowsItsOwnLoopKind) {
  // Baseline: a plain probabilistic loop widens with widenProb, a plain
  // conditional loop with widenCond.
  WidenProbeDomain Prob = probeWidenings(R"(
    proc main() { while prob(1/2) { skip; } }
  )");
  EXPECT_GT(Prob.ProbWidenings, 0u);
  EXPECT_EQ(Prob.CondWidenings, 0u);

  WidenProbeDomain Cond = probeWidenings(R"(
    proc main() { while (true) { skip; } }
  )");
  EXPECT_GT(Cond.CondWidenings, 0u);
  EXPECT_EQ(Cond.ProbWidenings, 0u);
}

TEST(WideningTest, ComponentHeadPrefersProbOverCondWidening) {
  // Regression: one node heads both a conditional and a probabilistic
  // loop — the component is guarded by its conditional head AND by a
  // probabilistic branch that can break out of it, so both kinds decide
  // another traversal. Selecting the operator from the head's own
  // outgoing edge alone (the old behavior) is an accident of which guard
  // the DFS made the head; the precedence ndet ▷ prob ▷ cond over the
  // component's guards must pick widenProb.
  WidenProbeDomain Dom = probeWidenings(R"(
    proc main() { while (true) { if prob(1/2) { break; } skip; } }
  )");
  EXPECT_GT(Dom.ProbWidenings, 0u)
      << "the probabilistic guard of the component must win";
  EXPECT_EQ(Dom.CondWidenings, 0u)
      << "the head's own conditional edge must not decide the operator";
}

TEST(WideningTest, ComponentHeadPrefersNdetOverProbWidening) {
  // Same precedence one rung up: a probabilistic loop that can also be
  // left through a nondeterministic break must widen with widenNdet (the
  // most pessimistic operator), not widenProb.
  WidenProbeDomain Dom = probeWidenings(R"(
    proc main() { while prob(1/2) { if star { break; } skip; } }
  )");
  EXPECT_GT(Dom.NdetWidenings, 0u);
  EXPECT_EQ(Dom.ProbWidenings, 0u);
}

TEST(WideningTest, InternalBranchesDoNotDecideTheWideningOperator) {
  // The counterpart boundary (Ex 5.8's shape): a probabilistic branch
  // wholly inside a conditional loop's body — both arms continue around
  // the loop — does not guard the component, so the head keeps the
  // pessimistic conditional widening it needs to stabilize.
  WidenProbeDomain Dom = probeWidenings(R"(
    proc main() { while (true) { if prob(1/2) { skip; } else { skip; } } }
  )");
  EXPECT_GT(Dom.CondWidenings, 0u);
  EXPECT_EQ(Dom.ProbWidenings, 0u);
}
