//===- tests/CfgTest.cpp - Hyper-graph lowering and WTO unit tests --------===//

#include "cfg/HyperGraph.h"
#include "cfg/Wto.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace pmaf;
using namespace pmaf::cfg;
using namespace pmaf::lang;

namespace {

/// Counts hyper-edges of each control-action kind.
struct EdgeCensus {
  unsigned Seq = 0, Call = 0, Cond = 0, Prob = 0, Ndet = 0;

  explicit EdgeCensus(const ProgramGraph &G) {
    for (const HyperEdge &E : G.edges()) {
      switch (E.Ctrl.TheKind) {
      case ControlAction::Kind::Seq:
        ++Seq;
        break;
      case ControlAction::Kind::Call:
        ++Call;
        break;
      case ControlAction::Kind::Cond:
        ++Cond;
        break;
      case ControlAction::Kind::Prob:
        ++Prob;
        break;
      case ControlAction::Kind::Ndet:
        ++Ndet;
        break;
      }
    }
  }
};

} // namespace

TEST(LoweringTest, StraightLine) {
  auto Prog = parseProgramOrDie(R"(
    real x;
    proc main() { x := 1; x := x + 1; }
  )");
  ProgramGraph G = ProgramGraph::build(*Prog);
  // Two statement nodes plus the exit.
  EXPECT_EQ(G.numNodes(), 3u);
  const auto &Main = G.proc(0);
  // Walk entry -> exit through seq edges.
  const HyperEdge *E1 = G.outgoing(Main.Entry);
  ASSERT_NE(E1, nullptr);
  EXPECT_EQ(E1->Ctrl.TheKind, ControlAction::Kind::Seq);
  ASSERT_EQ(E1->Dsts.size(), 1u);
  const HyperEdge *E2 = G.outgoing(E1->Dsts[0]);
  ASSERT_NE(E2, nullptr);
  EXPECT_EQ(E2->Dsts[0], Main.Exit);
  EXPECT_EQ(G.outgoing(Main.Exit), nullptr);
}

TEST(LoweringTest, EveryNonExitNodeHasExactlyOneOutgoingEdge) {
  auto Prog = parseProgramOrDie(R"(
    real x, y, z;
    proc helper() { x := x + 1; }
    proc main() {
      while prob(3/4) {
        z ~ uniform(0, 2);
        if star { x := x + z; } else { y := y + z; }
      }
      helper();
    }
  )");
  ProgramGraph G = ProgramGraph::build(*Prog);
  for (unsigned V = 0; V != G.numNodes(); ++V) {
    bool IsExit = false;
    for (unsigned P = 0; P != G.numProcs(); ++P)
      IsExit |= V == G.proc(P).Exit;
    EXPECT_EQ(G.outgoing(V) == nullptr, IsExit) << "node " << V;
  }
  // Defn 3.2: choice edges have 2 destinations, seq/call have 1.
  for (const HyperEdge &E : G.edges()) {
    bool Binary = E.Ctrl.TheKind == ControlAction::Kind::Cond ||
                  E.Ctrl.TheKind == ControlAction::Kind::Prob ||
                  E.Ctrl.TheKind == ControlAction::Kind::Ndet;
    EXPECT_EQ(E.Dsts.size(), Binary ? 2u : 1u);
  }
}

TEST(LoweringTest, Figure2bShape) {
  // Fig 1b lowers to the hyper-graph of Fig 2(b): 6 nodes, with a prob
  // edge at the loop head, a seq edge for the sample, an ndet edge, and
  // two assignment edges back to the head.
  auto Prog = parseProgramOrDie(R"(
    real x, y, z;
    proc main() {
      while prob(3/4) {
        z ~ uniform(0, 2);
        if star { x := x + z; } else { y := y + z; }
      }
    }
  )");
  ProgramGraph G = ProgramGraph::build(*Prog);
  // Fig 2(b)'s six nodes, plus one: the paper draws the loop head v0 as
  // the entry, while Defn 3.1 requires an entry with no incoming edges, so
  // the lowering prepends a skip node.
  EXPECT_EQ(G.numNodes(), 7u);
  EdgeCensus Census(G);
  EXPECT_EQ(Census.Prob, 1u);
  EXPECT_EQ(Census.Ndet, 1u);
  EXPECT_EQ(Census.Seq, 4u);
  EXPECT_EQ(Census.Cond, 0u);
  // Entry --skip--> loop head, whose prob edge sends branch 0 into the
  // body and branch 1 to the exit.
  const HyperEdge *EntryEdge = G.outgoing(G.proc(0).Entry);
  ASSERT_NE(EntryEdge, nullptr);
  ASSERT_EQ(EntryEdge->Ctrl.TheKind, ControlAction::Kind::Seq);
  const HyperEdge *Head = G.outgoing(EntryEdge->Dsts[0]);
  ASSERT_NE(Head, nullptr);
  ASSERT_EQ(Head->Ctrl.TheKind, ControlAction::Kind::Prob);
  EXPECT_EQ(Head->Ctrl.Prob, Rational(3, 4));
  EXPECT_EQ(Head->Dsts[1], G.proc(0).Exit);
  // Both assignment edges return to the loop head.
  unsigned BackToHead = 0;
  for (const HyperEdge &E : G.edges())
    if (E.Ctrl.TheKind == ControlAction::Kind::Seq && E.Ctrl.DataAction &&
        E.Ctrl.DataAction->kind() == Stmt::Kind::Assign &&
        E.Dsts[0] == Head->Src)
      ++BackToHead;
  EXPECT_EQ(BackToHead, 2u);
}

TEST(LoweringTest, BreakAndContinueTargets) {
  // Ex 3.4 / Fig 6: break jumps to the loop's successor (here the exit),
  // continue jumps back to the head.
  auto Prog = parseProgramOrDie(R"(
    real n;
    proc main() {
      n := 0;
      while prob(0.9) {
        n := n + 1;
        if (n >= 10) { break; } else { continue; }
      }
    }
  )");
  ProgramGraph G = ProgramGraph::build(*Prog);
  // Fig 6 has 5 nodes: n:=0, head, n:=n+1, the cond node, exit.
  EXPECT_EQ(G.numNodes(), 5u);
  const HyperEdge *First = G.outgoing(G.proc(0).Entry);
  ASSERT_EQ(First->Ctrl.TheKind, ControlAction::Kind::Seq);
  unsigned Head = First->Dsts[0];
  const HyperEdge *Loop = G.outgoing(Head);
  ASSERT_EQ(Loop->Ctrl.TheKind, ControlAction::Kind::Prob);
  unsigned Incr = Loop->Dsts[0];
  const HyperEdge *CondEdge = G.outgoing(G.outgoing(Incr)->Dsts[0]);
  ASSERT_EQ(CondEdge->Ctrl.TheKind, ControlAction::Kind::Cond);
  EXPECT_EQ(CondEdge->Dsts[0], G.proc(0).Exit); // break
  EXPECT_EQ(CondEdge->Dsts[1], Head);           // continue
}

TEST(LoweringTest, CallEdgesAndDependence) {
  auto Prog = parseProgramOrDie(R"(
    real x;
    proc helper() { x := x + 1; }
    proc main() { helper(); }
  )");
  ProgramGraph G = ProgramGraph::build(*Prog);
  EdgeCensus Census(G);
  EXPECT_EQ(Census.Call, 1u);
  // Eqn 2: the call site depends on the callee's entry.
  unsigned CallSite = ~0u;
  for (const HyperEdge &E : G.edges())
    if (E.Ctrl.TheKind == ControlAction::Kind::Call)
      CallSite = E.Src;
  ASSERT_NE(CallSite, ~0u);
  auto Deps = G.dependenceSuccessors();
  bool Found = false;
  for (unsigned W : Deps[G.proc(0).Entry])
    Found |= W == CallSite;
  EXPECT_TRUE(Found);
}

TEST(LoweringTest, EntryHasNoIncomingEdges) {
  // A procedure whose body is a bare loop would otherwise reuse the loop
  // head (which has back-edges) as the entry.
  auto Prog = parseProgramOrDie(R"(
    real x;
    proc main() { while prob(0.5) { x := x + 1; } }
  )");
  ProgramGraph G = ProgramGraph::build(*Prog);
  unsigned Entry = G.proc(0).Entry;
  for (const HyperEdge &E : G.edges())
    for (unsigned Dst : E.Dsts)
      EXPECT_NE(Dst, Entry);
}

TEST(LoweringTest, EmptyBodyGetsSkipEdge) {
  auto Prog = parseProgramOrDie("proc main() { }");
  ProgramGraph G = ProgramGraph::build(*Prog);
  unsigned Entry = G.proc(0).Entry;
  ASSERT_NE(Entry, G.proc(0).Exit);
  const HyperEdge *E = G.outgoing(Entry);
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->Ctrl.TheKind, ControlAction::Kind::Seq);
  EXPECT_EQ(E->Ctrl.DataAction, nullptr);
  EXPECT_EQ(E->Dsts[0], G.proc(0).Exit);
}

TEST(LoweringTest, DotOutputMentionsActions) {
  auto Prog = parseProgramOrDie(R"(
    real x;
    proc main() { while prob(0.5) { x := x + 1; } }
  )");
  ProgramGraph G = ProgramGraph::build(*Prog);
  std::string Dot = G.toDot();
  EXPECT_NE(Dot.find("digraph"), std::string::npos);
  EXPECT_NE(Dot.find("prob[1/2]"), std::string::npos);
  EXPECT_NE(Dot.find("x := "), std::string::npos);
}

//===----------------------------------------------------------------------===//
// WTO
//===----------------------------------------------------------------------===//

TEST(WtoTest, ChainIsTopologicallyOrdered) {
  // 0 -> 1 -> 2 (dependencies point forward).
  std::vector<std::vector<unsigned>> Succs = {{1}, {2}, {}};
  Wto W = Wto::compute(Succs, {0});
  EXPECT_EQ(W.toString(), "0 1 2");
  EXPECT_FALSE(W.WideningPoint[0]);
  EXPECT_FALSE(W.WideningPoint[1]);
  EXPECT_FALSE(W.WideningPoint[2]);
}

TEST(WtoTest, SelfLoopIsComponent) {
  std::vector<std::vector<unsigned>> Succs = {{0, 1}, {}};
  Wto W = Wto::compute(Succs, {0});
  EXPECT_EQ(W.toString(), "(0) 1");
  EXPECT_TRUE(W.WideningPoint[0]);
}

TEST(WtoTest, NestedLoops) {
  // Bourdoncle's classic example shape: outer loop 1..3 with inner loop
  // 2<->3: 0 -> 1 -> 2 -> 3 -> 2, 3 -> 1, 1 -> 4.
  std::vector<std::vector<unsigned>> Succs = {{1}, {2, 4}, {3}, {2, 1}, {}};
  Wto W = Wto::compute(Succs, {0});
  EXPECT_EQ(W.toString(), "0 (1 (2 3)) 4");
  EXPECT_TRUE(W.WideningPoint[1]);
  EXPECT_TRUE(W.WideningPoint[2]);
  EXPECT_FALSE(W.WideningPoint[3]);
}

TEST(WtoTest, CoversUnreachableVertices) {
  // Vertex 2 and 3 unreachable from the root but form a cycle.
  std::vector<std::vector<unsigned>> Succs = {{1}, {}, {3}, {2}};
  Wto W = Wto::compute(Succs, {0});
  EXPECT_TRUE(W.WideningPoint[2] || W.WideningPoint[3]);
  // All four vertices appear.
  std::string S = W.toString();
  for (const char *V : {"0", "1", "2", "3"})
    EXPECT_NE(S.find(V), std::string::npos) << S;
}

TEST(WtoTest, RecursionCycleThroughCallIsCut) {
  auto Prog = parseProgramOrDie(R"(
    real x;
    proc main() { if prob(0.5) { main(); } }
  )");
  ProgramGraph G = ProgramGraph::build(*Prog);
  Wto W = Wto::compute(G.dependenceSuccessors(), {G.proc(0).Exit});
  // The recursive call creates a dependence cycle entry -> ... -> callsite
  // -> ... -> entry; some node on it must be a widening point.
  bool AnyWidening = false;
  for (unsigned V = 0; V != G.numNodes(); ++V)
    AnyWidening |= W.WideningPoint[V];
  EXPECT_TRUE(AnyWidening);
}
