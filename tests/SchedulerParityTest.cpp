//===- tests/SchedulerParityTest.cpp - All schedulers, same fixpoint ------===//
//
// The scheduler layer (core/Schedule.h) promises that chaotic-iteration
// order is a performance knob, not a semantics knob: WTO-recursive,
// round-robin, the dependency-driven worklist, and the parallel per-SCC
// scheduler must reach Dom.equal fixpoints. This suite checks that
// node-by-node on every benchmark program of §6.2
// (src/benchmarks/Programs.cpp) across all four domains — BI, ADD-backed
// BI, MDP, and LEIA — and additionally checks the interpret-cache
// invariant: each solve calls Dom.interpret at most once per `seq` edge,
// and only cache hits follow.
//
// The parallel schedulers promise more than tolerance-equality: because
// each SCC is stabilized by a single worker replaying the sequential
// WTO-recursive update sequence (parallel-scc), or conflict-free units of
// one component run between barriers in an order extensionally identical
// to the sequential sweep (parallel-intra), and cross-SCC reads only see
// finalized upstream components, their fixpoints are *bit-identical* to
// the WTO-recursive one. The BitIdentical* tests pin that down with exact
// comparisons (no tolerance) across both parallel strategies, jobs in
// {1, 2, 8}, and component->worker affinity both on and off (the
// work-stealing pool's placement and stealing decisions must never leak
// into the fixpoint): Matrix::operator== for BI, double == for MDP, exact rational
// toString for LEIA, and NodeRef identity (shared hash-consing home
// manager) for ADD-BI — the latter running truly multi-threaded: workers
// compute in thread-local arena managers and publish through canonical
// migration into the home manager, so the parallel fixpoint's NodeRefs
// still match the sequential ones exactly.
//
// Two numeric subtleties the setup accounts for:
//  * Each solve stops when successive iterates agree to the domain's
//    tolerance (§6.1), so two iteration orders land on approximate
//    fixpoints a few ulps apart. Solves therefore run at the domain's
//    default (tight) tolerance while the cross-strategy comparison uses a
//    Dom.equal of the same domain type constructed with a looser
//    comparison tolerance.
//  * ADD NodeRefs are indices into a per-domain manager, so ADD-BI values
//    are only comparable within one AddBiDomain instance: its strategies
//    share a single domain (which also exercises transformer-cache reuse
//    across solves).
//
//===----------------------------------------------------------------------===//

#include "benchmarks/Programs.h"
#include "cfg/HyperGraph.h"
#include "core/Solver.h"
#include "domains/AddBiDomain.h"
#include "domains/BiDomain.h"
#include "domains/LeiaDomain.h"
#include "domains/MdpDomain.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace pmaf;
using namespace pmaf::core;
using namespace pmaf::domains;

namespace {

constexpr IterationStrategy AllStrategies[] = {
    IterationStrategy::WtoRecursive,
    IterationStrategy::RoundRobin,
    IterationStrategy::Worklist,
    IterationStrategy::ParallelScc,
    IterationStrategy::ParallelIntra,
};

/// The strategies that claim bit-identity with the WTO-recursive sweep,
/// and the worker counts the BitIdentical* tests sweep them across.
constexpr IterationStrategy ParallelStrategies[] = {
    IterationStrategy::ParallelScc,
    IterationStrategy::ParallelIntra,
};
constexpr unsigned ParallelJobCounts[] = {1, 2, 8};

bool isParallel(IterationStrategy Strategy) {
  return Strategy == IterationStrategy::ParallelScc ||
         Strategy == IterationStrategy::ParallelIntra;
}

/// Counts the `seq` hyper-edges of \p Graph (the interpret-cache key set).
unsigned countSeqEdges(const cfg::ProgramGraph &Graph) {
  unsigned Count = 0;
  for (const cfg::HyperEdge &Edge : Graph.edges())
    Count += Edge.Ctrl.TheKind == cfg::ControlAction::Kind::Seq;
  return Count;
}

/// Solves \p Graph under every strategy with a domain obtained from
/// \p MakeDomain (which may hand out the same instance every time), and
/// checks (a) all solves converge, (b) the interpret cache admits at most
/// one interpret per seq edge and solve, and (c) all fixpoints are equal
/// node-by-node under \p CompareDom's Dom.equal.
template <typename MakeDomainFn, typename CompareD>
void expectParity(const char *Name, const cfg::ProgramGraph &Graph,
                  SolverOptions Opts, MakeDomainFn MakeDomain,
                  CompareD &CompareDom) {
  auto Reference = [&] {
    decltype(auto) Dom = MakeDomain();
    Opts.Strategy = IterationStrategy::WtoRecursive;
    return solve(Graph, Dom, Opts);
  }();
  ASSERT_TRUE(Reference.Stats.Converged) << Name;
  for (IterationStrategy Strategy : AllStrategies) {
    decltype(auto) Dom = MakeDomain();
    Opts.Strategy = Strategy;
    // The parallel schedulers actually run multi-threaded (for domains
    // that allow it); the others stay sequential.
    Opts.Jobs = isParallel(Strategy) ? 4 : 1;
    auto Result = solve(Graph, Dom, Opts);
    ASSERT_TRUE(Result.Stats.Converged)
        << Name << " under " << toString(Strategy);
    EXPECT_LE(Result.Stats.InterpretCalls, countSeqEdges(Graph))
        << Name << " under " << toString(Strategy)
        << ": interpret-cache invariant violated";
    ASSERT_EQ(Result.Values.size(), Reference.Values.size());
    for (unsigned V = 0; V != Result.Values.size(); ++V)
      EXPECT_TRUE(CompareDom.equal(Result.Values[V], Reference.Values[V]))
          << Name << " under " << toString(Strategy) << ": node " << V
          << " differs from the WTO-recursive fixpoint\n  wto: "
          << CompareDom.toString(Reference.Values[V]) << "\n  "
          << toString(Strategy) << ": "
          << CompareDom.toString(Result.Values[V]);
  }
}

/// Solves under WTO-recursive (sequential) once, then under each parallel
/// strategy at every ParallelJobCounts worker count, and checks every
/// parallel fixpoint is bit-identical to the sequential one under the
/// exact predicate \p Identical (no tolerance involved).
template <typename MakeDomainFn, typename IdenticalFn>
void expectBitIdentical(const char *Name, const cfg::ProgramGraph &Graph,
                        SolverOptions Opts, MakeDomainFn MakeDomain,
                        IdenticalFn Identical) {
  decltype(auto) SeqDom = MakeDomain();
  Opts.Strategy = IterationStrategy::WtoRecursive;
  Opts.Jobs = 1;
  auto Sequential = solve(Graph, SeqDom, Opts);
  ASSERT_TRUE(Sequential.Stats.Converged) << Name;

  for (IterationStrategy Strategy : ParallelStrategies)
    for (unsigned Jobs : ParallelJobCounts)
      for (bool Affinity : {true, false}) {
        decltype(auto) ParDom = MakeDomain();
        Opts.Strategy = Strategy;
        Opts.Jobs = Jobs;
        Opts.Affinity = Affinity;
        auto Parallel = solve(Graph, ParDom, Opts);
        ASSERT_TRUE(Parallel.Stats.Converged)
            << Name << " under " << toString(Strategy) << " jobs=" << Jobs
            << " affinity=" << (Affinity ? "on" : "off");
        ASSERT_EQ(Sequential.Values.size(), Parallel.Values.size());
        for (unsigned V = 0; V != Sequential.Values.size(); ++V)
          EXPECT_TRUE(Identical(Sequential.Values[V], Parallel.Values[V]))
              << Name << " under " << toString(Strategy) << " jobs=" << Jobs
              << " affinity=" << (Affinity ? "on" : "off") << ": node " << V
              << " is not bit-identical to the sequential fixpoint";
      }
}

} // namespace

TEST(SchedulerParityTest, BiDomainOnAllBiPrograms) {
  for (const auto &Bench : benchmarks::biPrograms()) {
    auto Prog = lang::parseProgramOrDie(Bench.Source);
    cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
    BoolStateSpace Space(*Prog);
    SolverOptions Opts;
    Opts.UseWidening = false; // §5.1: BI is an under-abstraction.
    BiDomain CompareDom(Space, /*Tolerance=*/1e-9);
    expectParity(Bench.Name, Graph, Opts, [&] { return BiDomain(Space); },
                 CompareDom);
  }
}

TEST(SchedulerParityTest, AddBiDomainOnAllBiPrograms) {
  for (const auto &Bench : benchmarks::biPrograms()) {
    auto Prog = lang::parseProgramOrDie(Bench.Source);
    cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
    BoolStateSpace Space(*Prog);
    SolverOptions Opts;
    Opts.UseWidening = false;
    // One shared domain: ADD values are only comparable within a manager.
    AddBiDomain Shared(Space);
    expectParity(Bench.Name, Graph, Opts,
                 [&]() -> AddBiDomain & { return Shared; }, Shared);
  }
}

TEST(SchedulerParityTest, MdpDomainOnAllMdpPrograms) {
  for (const auto &Bench : benchmarks::mdpPrograms()) {
    auto Prog = lang::parseProgramOrDie(Bench.Source);
    cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
    SolverOptions Opts;
    Opts.WideningDelay = 10000; // Geometric chains stabilize first (§5.2).
    MdpDomain CompareDom(/*Tolerance=*/1e-9);
    expectParity(Bench.Name, Graph, Opts, [] { return MdpDomain(); },
                 CompareDom);
  }
}

TEST(SchedulerParityTest, LeiaDomainOnAllLeiaPrograms) {
  for (const auto &Bench : benchmarks::leiaPrograms()) {
    auto Prog = lang::parseProgramOrDie(Bench.Source);
    cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
    SolverOptions Opts;
    Opts.WideningDelay = 2; // Table 1 configuration.
    LeiaDomain CompareDom(*Prog, /*Tolerance=*/1e-6);
    expectParity(Bench.Name, Graph, Opts,
                 [&] { return LeiaDomain(*Prog); }, CompareDom);
  }
}

TEST(SchedulerParityTest, BitIdenticalBiDomain) {
  for (const auto &Bench : benchmarks::biPrograms()) {
    auto Prog = lang::parseProgramOrDie(Bench.Source);
    cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
    BoolStateSpace Space(*Prog);
    SolverOptions Opts;
    Opts.UseWidening = false;
    expectBitIdentical(Bench.Name, Graph, Opts,
                       [&] { return BiDomain(Space); },
                       [](const Matrix &A, const Matrix &B) { return A == B; });
  }
}

TEST(SchedulerParityTest, BitIdenticalAddBiDomain) {
  for (const auto &Bench : benchmarks::biPrograms()) {
    auto Prog = lang::parseProgramOrDie(Bench.Source);
    cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
    BoolStateSpace Space(*Prog);
    SolverOptions Opts;
    Opts.UseWidening = false;
    // One shared domain makes NodeRef identity meaningful: the parallel
    // run computes in per-worker arenas but every published Value is a
    // NodeRef in the same home manager, canonically migrated, so it must
    // coincide with the sequential run's NodeRef exactly.
    AddBiDomain Shared(Space);
    expectBitIdentical(Bench.Name, Graph, Opts,
                       [&]() -> AddBiDomain & { return Shared; },
                       [](add::NodeRef A, add::NodeRef B) { return A == B; });
  }
}

TEST(SchedulerParityTest, BitIdenticalMdpDomain) {
  for (const auto &Bench : benchmarks::mdpPrograms()) {
    auto Prog = lang::parseProgramOrDie(Bench.Source);
    cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
    SolverOptions Opts;
    Opts.WideningDelay = 10000;
    expectBitIdentical(Bench.Name, Graph, Opts, [] { return MdpDomain(); },
                       [](double A, double B) { return A == B; });
  }
}

TEST(SchedulerParityTest, BitIdenticalLeiaDomain) {
  for (const auto &Bench : benchmarks::leiaPrograms()) {
    auto Prog = lang::parseProgramOrDie(Bench.Source);
    cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
    SolverOptions Opts;
    Opts.WideningDelay = 2;
    LeiaDomain Printer(*Prog);
    expectBitIdentical(
        Bench.Name, Graph, Opts, [&] { return LeiaDomain(*Prog); },
        [&](const LeiaValue &A, const LeiaValue &B) {
          return Printer.toString(A) == Printer.toString(B);
        });
  }
}
