//===- tests/PmaLawsTest.cpp - Defn 4.2 laws for the instantiations -------===//
//
// Property-checks the pre-Markov algebra laws (Defn 4.2) on randomly
// generated elements of each of the three paper domains, plus an
// intentionally broken domain to show the checker has teeth.
//
//===----------------------------------------------------------------------===//

#include "core/LawCheck.h"
#include "domains/AddBiDomain.h"
#include "domains/BiDomain.h"
#include "domains/LeiaDomain.h"
#include "domains/MdpDomain.h"
#include "lang/Parser.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace pmaf;
using namespace pmaf::core;
using namespace pmaf::domains;

namespace {

std::vector<Rational> sampleProbs() {
  return {Rational(0), Rational(1, 4), Rational(1, 2), Rational(9, 10),
          Rational(1)};
}

/// Conditions used for the cond-choice laws; parsed against \p Prog by
/// building tiny ASTs directly.
struct CondPool {
  std::vector<lang::Cond::Ptr> Owned;
  std::vector<const lang::Cond *> Ptrs;

  void add(lang::Cond::Ptr C) {
    Ptrs.push_back(C.get());
    Owned.push_back(std::move(C));
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// MDP domain (§5.2): angelic orientation, all laws exact.
//===----------------------------------------------------------------------===//

TEST(PmaLawsTest, MdpDomainSatisfiesAllLaws) {
  MdpDomain Dom;
  LawCheckInput<MdpDomain> In;
  Rng R(101);
  for (int I = 0; I != 6; ++I)
    In.Samples.push_back(R.uniform(0.0, 10.0));
  In.Samples.push_back(0.0);
  In.Probs = sampleProbs();
  CondPool Conds;
  Conds.add(lang::Cond::makeTrue());
  Conds.add(lang::Cond::makeFalse());
  In.Conds = Conds.Ptrs;
  auto Violations = checkPmaLaws(Dom, In);
  EXPECT_TRUE(Violations.empty())
      << Violations.size() << " violations, first: " << Violations.front();
}

//===----------------------------------------------------------------------===//
// BI domain (§5.1): demonic orientation (⋓ = pointwise min computes lower
// bounds), all other laws exact up to float tolerance.
//===----------------------------------------------------------------------===//

TEST(PmaLawsTest, BiDomainSatisfiesMirroredLaws) {
  auto Prog = lang::parseProgramOrDie(R"(
    bool a, b;
    proc main() { skip; }
  )");
  BoolStateSpace Space(*Prog);
  BiDomain Dom(Space, 1e-9);

  LawCheckInput<BiDomain> In;
  // Sample transformers: kernels of data actions and random sub-stochastic
  // matrices.
  auto Assign = lang::Stmt::makeAssign(0, lang::Expr::makeBool(true));
  auto Sample = lang::Stmt::makeSample(
      1, [] {
        lang::Dist D;
        D.TheKind = lang::Dist::Kind::Bernoulli;
        D.Params.push_back(lang::Expr::makeNumber(Rational(1, 3)));
        return D;
      }());
  In.Samples.push_back(Dom.interpret(Assign.get()));
  In.Samples.push_back(Dom.interpret(Sample.get()));
  In.Samples.push_back(Dom.one());
  In.Samples.push_back(Dom.bottom());
  Rng R(55);
  for (int N = 0; N != 3; ++N) {
    Matrix M(Space.numStates(), Space.numStates());
    for (size_t I = 0; I != Space.numStates(); ++I) {
      double Remaining = 1.0;
      for (size_t J = 0; J != Space.numStates(); ++J) {
        double P = R.uniform() * Remaining * 0.5;
        M.at(I, J) = P;
        Remaining -= P;
      }
    }
    In.Samples.push_back(M);
  }
  In.Probs = sampleProbs();
  CondPool Conds;
  Conds.add(lang::Cond::makeBoolVar(0));
  Conds.add(lang::Cond::makeAnd(lang::Cond::makeBoolVar(0),
                                lang::Cond::makeBoolVar(1)));
  Conds.add(lang::Cond::makeTrue());
  In.Conds = Conds.Ptrs;

  LawCheckOptions Opts;
  Opts.ChoiceIsUpperBound = false; // Demonic under-abstraction.
  auto Violations = checkPmaLaws(Dom, In, Opts);
  EXPECT_TRUE(Violations.empty())
      << Violations.size() << " violations, first: " << Violations.front();
}

//===----------------------------------------------------------------------===//
// ADD-backed BI domain (§6.2): same mirrored laws as the dense BI domain —
// with the operands deliberately constructed in *different* AddManagers
// and migrated into the checked domain's home manager, so the laws are
// exercised across rename-and-merge boundaries (the cross-thread hand-off
// of the parallel engine, minus the threads).
//===----------------------------------------------------------------------===//

TEST(PmaLawsTest, AddBiDomainSatisfiesMirroredLawsAcrossManagers) {
  auto Prog = lang::parseProgramOrDie(R"(
    bool a, b;
    proc main() { skip; }
  )");
  BoolStateSpace Space(*Prog);
  AddBiDomain Dom(Space, 1e-9);
  // Two donor domains: each owns an independent manager whose NodeRefs
  // mean nothing in Dom's manager until migrated.
  AddBiDomain DonorA(Space, 1e-9);
  AddBiDomain DonorB(Space, 1e-9);

  auto Assign = lang::Stmt::makeAssign(0, lang::Expr::makeBool(true));
  auto Sample = lang::Stmt::makeSample(
      1, [] {
        lang::Dist D;
        D.TheKind = lang::Dist::Kind::Bernoulli;
        D.Params.push_back(lang::Expr::makeNumber(Rational(1, 3)));
        return D;
      }());

  // Canonicity after rename-and-merge: a kernel built in a donor manager
  // and migrated must land on the *identical* NodeRef as the same kernel
  // built natively — hash-consing makes migration canonical, which is what
  // lets the solver compare parallel-phase results by reference equality.
  add::MigrationCache FromA, FromB;
  add::AddManager &Home = Dom.manager();
  add::NodeRef MigratedAssign =
      Home.migrate(DonorA.interpret(Assign.get()), DonorA.manager(), FromA);
  EXPECT_EQ(MigratedAssign, Dom.interpret(Assign.get()));
  add::NodeRef MigratedSample =
      Home.migrate(DonorB.interpret(Sample.get()), DonorB.manager(), FromB);
  EXPECT_EQ(MigratedSample, Dom.interpret(Sample.get()));
  EXPECT_EQ(Home.migrate(DonorA.one(), DonorA.manager(), FromA), Dom.one());
  EXPECT_EQ(Home.migrate(DonorB.bottom(), DonorB.manager(), FromB),
            Dom.bottom());

  LawCheckInput<AddBiDomain> In;
  In.Samples.push_back(MigratedAssign);
  In.Samples.push_back(MigratedSample);
  // A composite built in donor A from donor-A operands, then migrated.
  In.Samples.push_back(Home.migrate(
      DonorA.probChoice(Rational(1, 4), DonorA.interpret(Assign.get()),
                        DonorA.one()),
      DonorA.manager(), FromA));
  In.Samples.push_back(Dom.one());
  In.Samples.push_back(Dom.bottom());
  In.Probs = sampleProbs();
  CondPool Conds;
  Conds.add(lang::Cond::makeBoolVar(0));
  Conds.add(lang::Cond::makeAnd(lang::Cond::makeBoolVar(0),
                                lang::Cond::makeBoolVar(1)));
  Conds.add(lang::Cond::makeTrue());
  In.Conds = Conds.Ptrs;

  LawCheckOptions Opts;
  Opts.ChoiceIsUpperBound = false; // Demonic under-abstraction.
  auto Violations = checkPmaLaws(Dom, In, Opts);
  EXPECT_TRUE(Violations.empty())
      << Violations.size() << " violations, first: " << Violations.front();
}

//===----------------------------------------------------------------------===//
// LEIA domain (§5.3): angelic orientation; the associativity-style laws
// hold only up to abstraction (polyhedral hulls) and are skipped, per
// Remark 4.3.
//===----------------------------------------------------------------------===//

TEST(PmaLawsTest, LeiaDomainSatisfiesCoreLaws) {
  auto Prog = lang::parseProgramOrDie(R"(
    real x, y;
    proc main() { skip; }
  )");
  LeiaDomain Dom(*Prog);

  LawCheckInput<LeiaDomain> In;
  auto Stmt = [&](const char *Text) {
    // Parse "x := ..."-style actions by wrapping them in a program.
    std::string Source =
        std::string("real x, y; proc main() { ") + Text + " }";
    auto P = lang::parseProgramOrDie(Source);
    return P->Procs[0].Body->stmts()[0]->kind() == lang::Stmt::Kind::Skip
               ? Dom.interpret(nullptr)
               : Dom.interpret(P->Procs[0].Body->stmts()[0].get());
  };
  In.Samples.push_back(Stmt("x := x + 1;"));
  In.Samples.push_back(Stmt("x ~ uniform(0, 2);"));
  In.Samples.push_back(Stmt("y := 2 * x;"));
  In.Samples.push_back(Dom.one());
  In.Samples.push_back(Dom.bottom());
  In.Samples.push_back(
      Dom.ndetChoice(Stmt("x := x + 1;"), Stmt("x := x + 3;")));
  In.Probs = sampleProbs();
  CondPool Conds;
  auto Var = [](unsigned I) { return lang::Expr::makeVar(I); };
  Conds.add(lang::Cond::makeCmp(lang::CmpOp::Le, Var(0),
                                lang::Expr::makeNumber(Rational(1))));
  Conds.add(lang::Cond::makeCmp(lang::CmpOp::Ge, Var(1), Var(0)));
  Conds.add(lang::Cond::makeTrue());
  In.Conds = Conds.Ptrs;

  LawCheckOptions Opts;
  Opts.CheckProbAssociativity = false;
  Opts.CheckCondAssociativity = false;
  auto Violations = checkPmaLaws(Dom, In, Opts);
  EXPECT_TRUE(Violations.empty())
      << Violations.size() << " violations, first: " << Violations.front();
}

//===----------------------------------------------------------------------===//
// Negative control: a deliberately broken domain must be caught.
//===----------------------------------------------------------------------===//

namespace {

/// MdpDomain with a non-associative, non-commutative "ndet" operator.
class BrokenDomain : public MdpDomain {
public:
  using Value = double;
  Value ndetChoice(const Value &A, const Value &B) const {
    return A + 0.5 * B; // Neither commutative nor idempotent.
  }
};

static_assert(core::PreMarkovAlgebra<BrokenDomain>);

} // namespace

TEST(PmaLawsTest, CheckerDetectsBrokenDomain) {
  BrokenDomain Dom;
  LawCheckInput<BrokenDomain> In;
  In.Samples = {1.0, 2.0, 5.0};
  In.Probs = {Rational(1, 2)};
  CondPool Conds;
  Conds.add(lang::Cond::makeTrue());
  In.Conds = Conds.Ptrs;
  auto Violations = checkPmaLaws(Dom, In);
  EXPECT_FALSE(Violations.empty());
  bool SawIdempotence = false, SawCommutativity = false;
  for (const std::string &V : Violations) {
    SawIdempotence |= V.find("ndet-idempotence") != std::string::npos;
    SawCommutativity |= V.find("ndet-commutativity") != std::string::npos;
  }
  EXPECT_TRUE(SawIdempotence);
  EXPECT_TRUE(SawCommutativity);
}
