//===- tests/NumericDomainTest.cpp - The numeric-backend ladder -----------===//
//
// Unit and differential tests of the numeric backends below the LEIA
// domain: intervals, zones (DBMs), and the escalating variable-packed
// ladder. The differential suites pin down the exactness contract:
//
//  * Zones vs Polyhedron agree *exactly* on systems inside the DBM
//    fragment (bounds and differences) under construction, meet, and
//    projection — randomized over seeded constraint systems;
//  * LadderValue vs Polyhedron agree exactly on arbitrary constraint
//    systems and under random operation sequences (meet / join / project /
//    widen / permute), checked through LadderValue::toPolyhedron().
//
//===----------------------------------------------------------------------===//

#include "poly/Intervals.h"
#include "poly/Ladder.h"
#include "poly/Polyhedron.h"
#include "poly/Zones.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace pmaf;
using namespace pmaf::poly;

namespace {

LinearExpr var(unsigned Dim, unsigned I) {
  return LinearExpr::variable(Dim, I);
}
LinearExpr cst(unsigned Dim, int64_t V) {
  return LinearExpr::constant(Dim, Rational(V));
}

/// A random constraint in the DBM fragment: `a x + b {>=,==} 0` or
/// `a (x - y) + b {>=,==} 0` with a != 0 (scale-invariance is part of the
/// fragment definition, so scaled coefficients are fair game).
Constraint randomDbmConstraint(Rng &R, unsigned Dim) {
  unsigned X = static_cast<unsigned>(R.below(Dim));
  int64_t A = static_cast<int64_t>(1 + R.below(3));
  if (R.below(2) == 0)
    A = -A;
  int64_t B = static_cast<int64_t>(R.below(17)) - 8;
  LinearExpr E = var(Dim, X).scaled(Rational(A)) + cst(Dim, B);
  if (Dim >= 2 && R.below(2) == 0) {
    unsigned Y = static_cast<unsigned>(R.below(Dim - 1));
    if (Y >= X)
      ++Y;
    E = (var(Dim, X) - var(Dim, Y)).scaled(Rational(A)) + cst(Dim, B);
  }
  // Equalities rarely (they empty the system quickly).
  Constraint::Kind K =
      R.below(8) == 0 ? Constraint::Kind::Eq : Constraint::Kind::Ge;
  return Constraint{E, K};
}

/// A random general (not necessarily DBM) constraint over up to three
/// variables.
Constraint randomGeneralConstraint(Rng &R, unsigned Dim) {
  LinearExpr E =
      cst(Dim, static_cast<int64_t>(R.below(17)) - 8);
  unsigned Terms = 1 + static_cast<unsigned>(R.below(3));
  for (unsigned T = 0; T != Terms; ++T) {
    int64_t A = static_cast<int64_t>(R.below(7)) - 3;
    E = E + var(Dim, static_cast<unsigned>(R.below(Dim)))
                .scaled(Rational(A));
  }
  Constraint::Kind K =
      R.below(8) == 0 ? Constraint::Kind::Eq : Constraint::Kind::Ge;
  return Constraint{E, K};
}

/// The exact polyhedral meaning of a zone.
Polyhedron zoneToPoly(const Zones &Z) {
  if (Z.isEmpty())
    return Polyhedron::empty(Z.dim());
  return Polyhedron::fromConstraints(Z.dim(), Z.rawConstraintList());
}

} // namespace

//===----------------------------------------------------------------------===//
// Constraint classification
//===----------------------------------------------------------------------===//

TEST(ClassifyConstraintTest, Fragments) {
  EXPECT_EQ(classifyConstraint(Constraint::ge(cst(3, 1), cst(3, 0))),
            ConstraintClass::Trivial);
  EXPECT_EQ(classifyConstraint(Constraint::ge(var(3, 0), cst(3, 2))),
            ConstraintClass::Bound);
  // Scale-invariant: 3z == 1 is still a bound.
  EXPECT_EQ(classifyConstraint(
                Constraint::eq(var(3, 2).scaled(Rational(3)), cst(3, 1))),
            ConstraintClass::Bound);
  EXPECT_EQ(classifyConstraint(
                Constraint::le(var(3, 0) - var(3, 1), cst(3, 4))),
            ConstraintClass::Difference);
  // 2x - 2y >= 3 is a scaled difference.
  EXPECT_EQ(classifyConstraint(Constraint::ge(
                (var(3, 0) - var(3, 1)).scaled(Rational(2)), cst(3, 3))),
            ConstraintClass::Difference);
  // x + y >= 0 couples two variables with equal-sign coefficients.
  EXPECT_EQ(classifyConstraint(
                Constraint::ge(var(3, 0) + var(3, 1), cst(3, 0))),
            ConstraintClass::General);
}

//===----------------------------------------------------------------------===//
// Intervals
//===----------------------------------------------------------------------===//

TEST(IntervalsTest, BasicLattice) {
  Intervals U = Intervals::universe(2);
  EXPECT_TRUE(U.isUniverse());
  Intervals A = U.meet(Constraint::ge(var(2, 0), cst(2, 1)))
                    .meet(Constraint::le(var(2, 0), cst(2, 3)));
  EXPECT_EQ(A.range(0).Lo, Rational(1));
  EXPECT_EQ(A.range(0).Hi, Rational(3));
  EXPECT_TRUE(A.range(1).isFree());

  Intervals B = U.meet(Constraint::ge(var(2, 0), cst(2, 2)))
                    .meet(Constraint::le(var(2, 0), cst(2, 5)));
  Intervals J = A.join(B);
  EXPECT_EQ(J.range(0).Lo, Rational(1));
  EXPECT_EQ(J.range(0).Hi, Rational(5));
  EXPECT_TRUE(J.contains(A));
  EXPECT_TRUE(J.contains(B));
  EXPECT_TRUE(A.meet(B).equals(
      U.meet(Constraint::ge(var(2, 0), cst(2, 2)))
          .meet(Constraint::le(var(2, 0), cst(2, 3)))));

  // Inverted bounds empty the box.
  EXPECT_TRUE(A.meet(Constraint::ge(var(2, 0), cst(2, 7))).isEmpty());
}

TEST(IntervalsTest, ProjectWidenMaximize) {
  Intervals A = Intervals::fromConstraints(
      2, {Constraint::ge(var(2, 0), cst(2, 0)),
          Constraint::le(var(2, 0), cst(2, 2)),
          Constraint::le(var(2, 1), cst(2, 9))});
  EXPECT_TRUE(A.project({0}).range(0).isFree());
  EXPECT_EQ(A.project({0}).range(1).Hi, Rational(9));

  Intervals Wider = A.join(Intervals::fromConstraints(
      2, {Constraint::ge(var(2, 0), cst(2, 0)),
          Constraint::le(var(2, 0), cst(2, 5)),
          Constraint::le(var(2, 1), cst(2, 9))}));
  Intervals W = A.widen(Wider);
  EXPECT_EQ(W.range(0).Lo, Rational(0)); // Stable bound survives.
  EXPECT_FALSE(W.range(0).Hi);           // Unstable bound dropped.
  EXPECT_EQ(W.range(1).Hi, Rational(9));

  EXPECT_EQ(A.maximize(var(2, 0) + cst(2, 1)), Rational(3));
  EXPECT_EQ(A.minimize(var(2, 0)), Rational(0));
  EXPECT_EQ(A.maximize(var(2, 1)), Rational(9));
  EXPECT_FALSE(A.minimize(var(2, 1)).has_value()); // Unbounded below.
}

//===----------------------------------------------------------------------===//
// Zones
//===----------------------------------------------------------------------===//

TEST(ZonesTest, ClosurePropagatesBounds) {
  // x - y <= 1, y <= 2  ==>  x <= 3 (via closure).
  Zones Z = Zones::fromConstraints(
      2, {Constraint::le(var(2, 0) - var(2, 1), cst(2, 1)),
          Constraint::le(var(2, 1), cst(2, 2))});
  EXPECT_EQ(Z.maximize(var(2, 0)), Rational(3));
  EXPECT_TRUE(Z.entryFinite(1, 0)); // x - v0 <= 3 materialized.
  EXPECT_EQ(Z.entryBound(1, 0), Rational(3));
}

TEST(ZonesTest, EmptinessAndEquality) {
  Zones Z = Zones::fromConstraints(
      2, {Constraint::ge(var(2, 0) - var(2, 1), cst(2, 2)),
          Constraint::le(var(2, 0) - var(2, 1), cst(2, 1))});
  EXPECT_TRUE(Z.isEmpty());

  Zones A = Zones::fromConstraints(
      2, {Constraint::le(var(2, 0), cst(2, 1))});
  Zones B = Zones::fromConstraints(
      2, {Constraint::le(var(2, 0).scaled(Rational(2)), cst(2, 2))});
  EXPECT_TRUE(A.equals(B)); // Scale-invariant parsing.
}

TEST(ZonesTest, PackComponentsSplitAndCouple) {
  // Plain bounds on x and y: no genuine coupling, two components.
  Zones Bounds = Zones::fromConstraints(
      2, {Constraint::le(var(2, 0), cst(2, 1)),
          Constraint::le(var(2, 1), cst(2, 2))});
  EXPECT_EQ(Bounds.packComponents().size(), 2u);

  // A difference strictly tighter than the bound path couples them.
  Zones Coupled = Bounds.meet(
      Constraint::le(var(2, 0) - var(2, 1), cst(2, 0)));
  ASSERT_EQ(Coupled.packComponents().size(), 1u);
  EXPECT_EQ(Coupled.packComponents()[0].size(), 2u);
}

TEST(ZonesTest, DifferentialVsPolyhedronOnDbmFragment) {
  // Randomized exactness: on systems inside the DBM fragment, the zone
  // and the polyhedron denote the same set — under construction, meet
  // with a random system, and projection.
  Rng R(20260808);
  for (int Iter = 0; Iter != 60; ++Iter) {
    unsigned Dim = 2 + static_cast<unsigned>(R.below(3));
    std::vector<Constraint> Cons;
    unsigned N = 1 + static_cast<unsigned>(R.below(6));
    for (unsigned I = 0; I != N; ++I)
      Cons.push_back(randomDbmConstraint(R, Dim));

    Zones Z = Zones::fromConstraints(Dim, Cons);
    Polyhedron P = Polyhedron::fromConstraints(Dim, Cons);
    EXPECT_TRUE(zoneToPoly(Z).equals(P))
        << "fromConstraints diverges at iter " << Iter;

    std::vector<Constraint> MeetCons{randomDbmConstraint(R, Dim),
                                     randomDbmConstraint(R, Dim)};
    Zones ZM = Z.meet(Zones::fromConstraints(Dim, MeetCons));
    Polyhedron PM = P.meet(Polyhedron::fromConstraints(Dim, MeetCons));
    EXPECT_TRUE(zoneToPoly(ZM).equals(PM))
        << "meet diverges at iter " << Iter;

    std::vector<unsigned> Forget{static_cast<unsigned>(R.below(Dim))};
    EXPECT_TRUE(zoneToPoly(Z.project(Forget)).equals(P.project(Forget)))
        << "project diverges at iter " << Iter;

    // Inclusion must agree with the polyhedral truth as well.
    EXPECT_EQ(Z.contains(ZM), P.contains(PM))
        << "contains diverges at iter " << Iter;
  }
}

//===----------------------------------------------------------------------===//
// Polyhedron::product (the ladder's dualization-free block merge)
//===----------------------------------------------------------------------===//

TEST(PolyhedronProductTest, ProductEqualsConjunction) {
  // [0,1] x ([0,2] with x-y <= 1) == the conjunction over 3 dims.
  Polyhedron A = Polyhedron::fromConstraints(
      1, {Constraint::ge(var(1, 0), cst(1, 0)),
          Constraint::le(var(1, 0), cst(1, 1))});
  Polyhedron B = Polyhedron::fromConstraints(
      2, {Constraint::ge(var(2, 0), cst(2, 0)),
          Constraint::le(var(2, 0), cst(2, 2)),
          Constraint::le(var(2, 0) - var(2, 1), cst(2, 1))});
  Polyhedron Prod = Polyhedron::product(A, B);
  ASSERT_EQ(Prod.dim(), 3u);
  Polyhedron Expect = Polyhedron::fromConstraints(
      3, {Constraint::ge(var(3, 0), cst(3, 0)),
          Constraint::le(var(3, 0), cst(3, 1)),
          Constraint::ge(var(3, 1), cst(3, 0)),
          Constraint::le(var(3, 1), cst(3, 2)),
          Constraint::le(var(3, 1) - var(3, 2), cst(3, 1))});
  EXPECT_TRUE(Prod.equals(Expect));
}

TEST(PolyhedronProductTest, ProductWithUnboundedFactor) {
  // An unbounded factor (a ray) must survive the product.
  Polyhedron A = Polyhedron::fromConstraints(
      1, {Constraint::ge(var(1, 0), cst(1, 2))});
  Polyhedron B = Polyhedron::fromConstraints(
      1, {Constraint::eq(var(1, 0), cst(1, 5))});
  Polyhedron Prod = Polyhedron::product(A, B);
  EXPECT_FALSE(Prod.maximize(var(2, 0)).has_value());
  EXPECT_EQ(Prod.minimize(var(2, 0)), Rational(2));
  EXPECT_EQ(Prod.maximize(var(2, 1)), Rational(5));
}

//===----------------------------------------------------------------------===//
// LadderValue
//===----------------------------------------------------------------------===//

TEST(LadderTest, PacksStayAtTheCheapestRung) {
  using Rung = LadderValue::Rung;
  LadderValue V = LadderValue::universe(4);
  EXPECT_TRUE(V.isUniverse());

  // Independent bounds: every block is a single-variable box.
  V = V.meet(Constraint::ge(var(4, 0), cst(4, 0)))
          .meet(Constraint::le(var(4, 2), cst(4, 7)));
  for (const auto &[Size, R] : V.blockProfile()) {
    EXPECT_EQ(Size, 1u);
    EXPECT_EQ(R, Rung::Box);
  }

  // A difference couples 0 and 1 into a zone block.
  V = V.meet(Constraint::le(var(4, 0) - var(4, 1), cst(4, 1)));
  auto Profile = V.blockProfile();
  ASSERT_EQ(Profile.size(), 3u); // {0,1} zone, {2} box, {3} box.
  EXPECT_EQ(Profile[0].first, 2u);
  EXPECT_EQ(Profile[0].second, Rung::Zone);

  // A general 3-variable constraint escalates to one polyhedron block.
  V = V.meet(Constraint::le(var(4, 0) + var(4, 1) + var(4, 3),
                            cst(4, 10)));
  Profile = V.blockProfile();
  ASSERT_EQ(Profile.size(), 2u); // {0,1,3} poly, {2} box.
  EXPECT_EQ(Profile[0].first, 3u);
  EXPECT_EQ(Profile[0].second, Rung::Poly);
  EXPECT_EQ(Profile[1].first, 1u);
  EXPECT_EQ(Profile[1].second, Rung::Box);
}

TEST(LadderTest, ProjectionRecompresses) {
  // Forgetting the coupling variable of a general constraint lets the
  // survivors fall back to independent boxes.
  LadderValue V = LadderValue::fromConstraints(
      3, {Constraint::le(var(3, 0) + var(3, 1) + var(3, 2), cst(3, 6)),
          Constraint::ge(var(3, 0), cst(3, 0)),
          Constraint::ge(var(3, 1), cst(3, 0)),
          Constraint::ge(var(3, 2), cst(3, 0))});
  ASSERT_EQ(V.blockProfile().size(), 1u);
  // x0 + x1 <= 6 remains: still one (general) block over {0, 1} plus the
  // freed {2}; forgetting x1 as well leaves independent boxes.
  LadderValue Pr = V.project({2});
  ASSERT_EQ(Pr.blockProfile().size(), 2u);
  EXPECT_EQ(Pr.blockProfile()[0].first, 2u);
  LadderValue Pr2 = V.project({1, 2});
  for (const auto &[Size, R] : Pr2.blockProfile())
    EXPECT_EQ(Size, 1u);
  EXPECT_EQ(Pr2.maximize(var(3, 0)), Rational(6));
}

TEST(LadderTest, EscalationCounterAdvances) {
  uint64_t Before =
      numericCounters().LadderEscalations.load(std::memory_order_relaxed);
  LadderValue V = LadderValue::universe(2)
                      .meet(Constraint::le(var(2, 0) - var(2, 1), cst(2, 0)));
  (void)V;
  uint64_t After =
      numericCounters().LadderEscalations.load(std::memory_order_relaxed);
  EXPECT_GT(After, Before);
}

TEST(LadderTest, DifferentialVsPolyhedronOnRandomSystems) {
  // Exactness on arbitrary (mixed-fragment) constraint systems.
  Rng R(987654321);
  for (int Iter = 0; Iter != 40; ++Iter) {
    unsigned Dim = 2 + static_cast<unsigned>(R.below(3));
    std::vector<Constraint> Cons;
    unsigned N = 1 + static_cast<unsigned>(R.below(6));
    for (unsigned I = 0; I != N; ++I)
      Cons.push_back(R.below(3) == 0 ? randomGeneralConstraint(R, Dim)
                                     : randomDbmConstraint(R, Dim));
    LadderValue L = LadderValue::fromConstraints(Dim, Cons);
    Polyhedron P = Polyhedron::fromConstraints(Dim, Cons);
    EXPECT_TRUE(L.toPolyhedron().equals(P))
        << "fromConstraints diverges at iter " << Iter;
    EXPECT_EQ(L.isEmpty(), P.isEmpty());
  }
}

TEST(LadderTest, DifferentialVsPolyhedronOnOpSequences) {
  // Random operation sequences applied in lockstep to a LadderValue and
  // a Polyhedron; the two must denote the same set after every step.
  Rng R(20180613); // PLDI'18.
  for (int Trial = 0; Trial != 25; ++Trial) {
    unsigned Dim = 2 + static_cast<unsigned>(R.below(2));
    LadderValue L = LadderValue::universe(Dim);
    Polyhedron P = Polyhedron::universe(Dim);
    for (int Step = 0; Step != 8; ++Step) {
      switch (R.below(5)) {
      case 0: { // Meet with a random constraint.
        Constraint C = R.below(3) == 0 ? randomGeneralConstraint(R, Dim)
                                       : randomDbmConstraint(R, Dim);
        L = L.meet(C);
        P = P.meet(C);
        break;
      }
      case 1: { // Meet with a random system.
        std::vector<Constraint> Cons{randomDbmConstraint(R, Dim),
                                     randomDbmConstraint(R, Dim)};
        L = L.meet(LadderValue::fromConstraints(Dim, Cons));
        P = P.meet(Polyhedron::fromConstraints(Dim, Cons));
        break;
      }
      case 2: { // Join with a random system (convex hull).
        std::vector<Constraint> Cons{randomDbmConstraint(R, Dim),
                                     randomDbmConstraint(R, Dim),
                                     randomGeneralConstraint(R, Dim)};
        L = L.join(LadderValue::fromConstraints(Dim, Cons));
        P = P.join(Polyhedron::fromConstraints(Dim, Cons));
        break;
      }
      case 3: { // Project a random variable.
        std::vector<unsigned> Forget{static_cast<unsigned>(R.below(Dim))};
        L = L.project(Forget);
        P = P.project(Forget);
        break;
      }
      default: { // Widen against self joined with a random system.
        std::vector<Constraint> Cons{randomDbmConstraint(R, Dim)};
        LadderValue LN = L.join(LadderValue::fromConstraints(Dim, Cons));
        Polyhedron PN = P.join(Polyhedron::fromConstraints(Dim, Cons));
        if (!LN.isEmpty() && !PN.isEmpty()) {
          L = L.isEmpty() ? LN : L.widen(LN);
          P = P.isEmpty() ? PN : P.widen(PN);
        }
        break;
      }
      }
      ASSERT_TRUE(L.toPolyhedron().equals(P))
          << "trial " << Trial << " step " << Step << " diverges:\n  L = "
          << L.toString() << "\n  P = " << P.toString();
      ASSERT_EQ(L.isEmpty(), P.isEmpty());
    }

    // Rename and vocabulary surgery on the final value.
    std::vector<unsigned> Perm(Dim);
    for (unsigned I = 0; I != Dim; ++I)
      Perm[I] = (I + 1) % Dim;
    EXPECT_TRUE(L.permute(Perm).toPolyhedron().equals(P.permute(Perm)));
    EXPECT_TRUE(L.extend(2).toPolyhedron().equals(P.extend(2)));
    if (Dim > 1) {
      EXPECT_TRUE(
          L.dropTrailing(1).toPolyhedron().equals(P.dropTrailing(1)));
    }
  }
}

TEST(LadderTest, RoundedCoefficientsMatchesPolyhedron) {
  // Large-denominator bounds round identically on both backends.
  Rational Awkward(1, (int64_t{1} << 41) + 1);
  LadderValue L = LadderValue::universe(2).meet(
      Constraint{var(2, 0) - LinearExpr::constant(2, Awkward),
                 Constraint::Kind::Ge});
  Polyhedron P = Polyhedron::universe(2).meet(
      Constraint{var(2, 0) - LinearExpr::constant(2, Awkward),
                 Constraint::Kind::Ge});
  EXPECT_TRUE(
      L.roundedCoefficients(40).toPolyhedron().equals(
          P.roundedCoefficients(40)));
}
