//===- tests/LintTest.cpp - Semantic lint tests ----------------------------===//
//
// Two halves: the seeded-defect fixtures under examples/bad/ must each
// produce exactly the expected diagnostic codes at the expected positions,
// and every shipped program (the paper's benchmarks, under their natural
// domains) must lint clean.
//
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"
#include "benchmarks/Programs.h"
#include "lang/Parser.h"

#include "gtest/gtest.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace pmaf;
using namespace pmaf::analysis;

namespace {

std::string readFixture(const std::string &Name) {
  std::string Path = std::string(PMAF_BAD_EXAMPLES_DIR) + "/" + Name;
  std::ifstream In(Path);
  EXPECT_TRUE(In) << "cannot open fixture " << Path;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

/// Parses + lints \p Source exactly like `pmaf check` does: a parse
/// failure is reported into the engine; a parsed program is linted.
void checkSource(const std::string &Source, DiagnosticEngine &Diags,
                 TargetDomain Domain = TargetDomain::None) {
  lang::ParseResult Parsed = lang::parseProgram(Source, Diags);
  if (!Parsed)
    return;
  LintOptions Opts;
  Opts.Domain = Domain;
  lintProgram(*Parsed.Prog, Diags, Opts);
  Diags.sortByLocation();
}

struct ExpectedDiag {
  const char *Code;
  unsigned Line;
  unsigned Col;
  Severity Sev;
};

void expectFixtureDiags(const std::string &Name,
                        const std::vector<ExpectedDiag> &Expected,
                        TargetDomain Domain = TargetDomain::None) {
  DiagnosticEngine Diags;
  Diags.setSource(Name, readFixture(Name));
  checkSource(readFixture(Name), Diags, Domain);
  ASSERT_EQ(Diags.diagnostics().size(), Expected.size())
      << Name << " diagnostics:\n"
      << Diags.renderAll();
  for (size_t I = 0; I != Expected.size(); ++I) {
    const Diagnostic &D = Diags.diagnostics()[I];
    EXPECT_EQ(D.Code, Expected[I].Code) << Name << " #" << I;
    EXPECT_EQ(D.Loc.Line, Expected[I].Line) << Name << " #" << I;
    EXPECT_EQ(D.Loc.Col, Expected[I].Col) << Name << " #" << I;
    EXPECT_EQ(D.Sev, Expected[I].Sev) << Name << " #" << I;
  }
}

//===----------------------------------------------------------------------===//
// Seeded-defect fixtures
//===----------------------------------------------------------------------===//

TEST(LintFixtureTest, ProbRange) {
  expectFixtureDiags("prob_range.pp",
                     {{"prob-range", 4, 17, Severity::Error}});
}

TEST(LintFixtureTest, BadProbability) {
  expectFixtureDiags("bad_probability.pp",
                     {{"prob-range", 4, 11, Severity::Error}});
}

TEST(LintFixtureTest, DegenerateProb) {
  expectFixtureDiags("degenerate_prob.pp",
                     {{"degenerate-prob", 4, 6, Severity::Warning}});
}

TEST(LintFixtureTest, DivByZero) {
  expectFixtureDiags("div_by_zero.pp",
                     {{"div-by-zero", 4, 13, Severity::Error}});
}

TEST(LintFixtureTest, TypeMismatch) {
  expectFixtureDiags("type_mismatch.pp",
                     {{"type-mismatch", 5, 8, Severity::Error}});
}

TEST(LintFixtureTest, UnreachableStmt) {
  expectFixtureDiags("unreachable.pp",
                     {{"unreachable-stmt", 5, 3, Severity::Warning}});
}

TEST(LintFixtureTest, DivergentLoop) {
  expectFixtureDiags("divergent_loop.pp",
                     {{"unreachable-exit", 4, 6, Severity::Warning},
                      {"divergent-loop", 5, 3, Severity::Warning}});
}

TEST(LintFixtureTest, UndefinedProc) {
  expectFixtureDiags("undefined_proc.pp",
                     {{"undefined-procedure", 3, 3, Severity::Error}});
}

TEST(LintFixtureTest, UndefinedVar) {
  expectFixtureDiags("undefined_var.pp",
                     {{"undefined-variable", 4, 3, Severity::Error}});
}

TEST(LintFixtureTest, ParseError) {
  expectFixtureDiags("parse_error.pp",
                     {{"parse-error", 4, 5, Severity::Error}});
}

TEST(LintFixtureTest, SignedVarDomainNeutral) {
  // Without a target domain only the degenerate choice is reported.
  expectFixtureDiags("signed_var.pp",
                     {{"degenerate-prob", 7, 6, Severity::Warning}});
}

TEST(LintFixtureTest, SignedVarUnderLeia) {
  expectFixtureDiags("signed_var.pp",
                     {{"signed-var", 6, 3, Severity::Error},
                      {"degenerate-prob", 7, 6, Severity::Warning},
                      {"signed-var", 8, 5, Severity::Error}},
                     TargetDomain::Leia);
}

TEST(LintFixtureTest, AssertionFixturesLintClean) {
  // The defects in the assertion fixtures are checker-level properties
  // (ChecksTest pins their verdicts); the lint must not flag them.
  expectFixtureDiags("violated_assert_prob.pp", {}, TargetDomain::Bi);
  expectFixtureDiags("unprovable_assert_reward.pp", {}, TargetDomain::Mdp);
}

//===----------------------------------------------------------------------===//
// Additional check coverage on inline sources
//===----------------------------------------------------------------------===//

TEST(LintTest, DomainMismatchBiRejectsRealVars) {
  DiagnosticEngine Diags;
  checkSource("real x;\nproc main() { x := 1; }\n", Diags,
              TargetDomain::Bi);
  ASSERT_EQ(Diags.diagnostics().size(), 1u);
  EXPECT_EQ(Diags.diagnostics()[0].Code, "domain-mismatch");
  EXPECT_EQ(Diags.diagnostics()[0].Loc.Line, 1u);
  EXPECT_EQ(Diags.diagnostics()[0].Loc.Col, 6u);
}

TEST(LintTest, DomainMismatchBiRejectsTooManyBools) {
  std::string Decl = "bool b0";
  for (int I = 1; I != 21; ++I)
    Decl += ", b" + std::to_string(I);
  DiagnosticEngine Diags;
  checkSource(Decl + ";\nproc main() { skip; }\n", Diags, TargetDomain::Bi);
  ASSERT_EQ(Diags.diagnostics().size(), 1u);
  EXPECT_EQ(Diags.diagnostics()[0].Code, "domain-mismatch");
}

TEST(LintTest, DomainMismatchLeiaRejectsBools) {
  DiagnosticEngine Diags;
  checkSource("bool b;\nproc main() { skip; }\n", Diags,
              TargetDomain::Leia);
  ASSERT_EQ(Diags.diagnostics().size(), 1u);
  EXPECT_EQ(Diags.diagnostics()[0].Code, "domain-mismatch");
}

TEST(LintTest, RewardIgnoredUnderNonMdpDomains) {
  const char *Source = "real x;\nproc main() { reward(2); }\n";
  for (TargetDomain D :
       {TargetDomain::Leia, TargetDomain::Bi, TargetDomain::Termination}) {
    DiagnosticEngine Diags;
    checkSource(Source, Diags, D);
    bool HasRewardIgnored = false;
    for (const Diagnostic &Diag : Diags.diagnostics())
      if (Diag.Code == "reward-ignored")
        HasRewardIgnored = true;
    EXPECT_TRUE(HasRewardIgnored) << "domain " << static_cast<int>(D);
  }
  DiagnosticEngine Diags;
  checkSource(Source, Diags, TargetDomain::Mdp);
  for (const Diagnostic &Diag : Diags.diagnostics())
    EXPECT_NE(Diag.Code, "reward-ignored");
}

TEST(LintTest, TerminationDomainSuppressesDivergenceWarnings) {
  const char *Source = "proc main() { while (true) { skip; } }\n";
  DiagnosticEngine Plain;
  checkSource(Source, Plain, TargetDomain::None);
  EXPECT_FALSE(Plain.empty());
  DiagnosticEngine Term;
  checkSource(Source, Term, TargetDomain::Termination);
  EXPECT_TRUE(Term.empty()) << Term.renderAll();
}

TEST(LintTest, DivergencePropagatesThroughCalls) {
  // risky never returns, so main's exit is unreachable too.
  const char *Source = "proc risky() { while (true) { skip; } }\n"
                       "proc main() { risky(); }\n";
  DiagnosticEngine Diags;
  checkSource(Source, Diags);
  unsigned NoExit = 0;
  for (const Diagnostic &D : Diags.diagnostics())
    if (D.Code == "unreachable-exit")
      ++NoExit;
  EXPECT_EQ(NoExit, 2u) << Diags.renderAll();
}

TEST(LintTest, BreakMakesLoopNonDivergent) {
  const char *Source =
      "real x;\nproc main() { while (true) { if (x == 1) { break; } else "
      "{ skip; } } }\n";
  DiagnosticEngine Diags;
  checkSource(Source, Diags);
  EXPECT_TRUE(Diags.empty()) << Diags.renderAll();
}

TEST(LintTest, ProgrammaticAstOutOfRangeIndices) {
  // Built without the parser: references to variables and procedures that
  // do not exist must be caught before the lowering would assert.
  auto Prog = std::make_unique<lang::Program>();
  std::vector<lang::Stmt::Ptr> Stmts;
  Stmts.push_back(lang::Stmt::makeAssign(7, lang::Expr::makeNumber(1)));
  auto Call = lang::Stmt::makeCall("ghost");
  Call->setCalleeIndex(9);
  Stmts.push_back(std::move(Call));
  Prog->Procs.push_back(lang::Procedure{
      "main", lang::Stmt::makeBlock(std::move(Stmts)), {}});
  DiagnosticEngine Diags;
  lintProgram(*Prog, Diags);
  ASSERT_EQ(Diags.diagnostics().size(), 2u) << Diags.renderAll();
  EXPECT_EQ(Diags.diagnostics()[0].Code, "undefined-variable");
  EXPECT_EQ(Diags.diagnostics()[1].Code, "undefined-procedure");
}

TEST(LintTest, WerrorPromotesWarnings) {
  DiagnosticEngine Diags;
  Diags.setWarningsAsErrors(true);
  checkSource(readFixture("degenerate_prob.pp"), Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.warningCount(), 0u);
}

//===----------------------------------------------------------------------===//
// The shipped programs lint clean
//===----------------------------------------------------------------------===//

void expectCleanTable(
    const std::vector<benchmarks::BenchProgram> &Table,
    TargetDomain Domain) {
  for (const benchmarks::BenchProgram &Bench : Table) {
    DiagnosticEngine Diags;
    Diags.setSource(Bench.Name, Bench.Source);
    checkSource(Bench.Source, Diags, Domain);
    EXPECT_TRUE(Diags.empty())
        << Bench.Name << ":\n"
        << Diags.renderAll();
  }
}

TEST(LintCleanTest, QuickstartExample) {
  // The program from README.md / examples/quickstart.cpp.
  const char *Source = R"(
    real x, y, z;
    proc main() {
      while prob(3/4) {
        z ~ uniform(0, 2);
        if star { x := x + z; } else { y := y + z; }
      }
    }
  )";
  DiagnosticEngine Diags;
  Diags.setSource("quickstart", Source);
  checkSource(Source, Diags, TargetDomain::Leia);
  EXPECT_TRUE(Diags.empty()) << Diags.renderAll();
}

TEST(LintCleanTest, LeiaBenchmarks) {
  expectCleanTable(benchmarks::leiaPrograms(), TargetDomain::Leia);
}

TEST(LintCleanTest, BiBenchmarks) {
  expectCleanTable(benchmarks::biPrograms(), TargetDomain::Bi);
}

TEST(LintCleanTest, MdpBenchmarks) {
  expectCleanTable(benchmarks::mdpPrograms(), TargetDomain::Mdp);
}

} // namespace
