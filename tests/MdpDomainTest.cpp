//===- tests/MdpDomainTest.cpp - MDP-rewards instantiation tests ----------===//

#include "cfg/HyperGraph.h"
#include "core/Solver.h"
#include "domains/MdpDomain.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

using namespace pmaf;
using namespace pmaf::core;
using namespace pmaf::domains;

namespace {

/// Runs the MDP-rewards analysis and returns the main-procedure summary
/// (greatest expected reward from entry to exit).
double analyzeReward(const char *Source, SolverOptions Opts = {}) {
  auto Prog = lang::parseProgramOrDie(Source);
  cfg::ProgramGraph G = cfg::ProgramGraph::build(*Prog);
  MdpDomain Dom;
  // The MDP widening is the paper's trivial jump-to-infinity, so give
  // geometric chains room to stabilize first (§5.2).
  Opts.WideningDelay = std::max(Opts.WideningDelay, 10000u);
  auto Result = solve(G, Dom, Opts);
  EXPECT_TRUE(Result.Stats.Converged);
  unsigned MainIndex = Prog->findProc("main");
  return Result.Values[G.proc(MainIndex).Entry];
}

} // namespace

TEST(MdpDomainTest, StraightLineAccumulates) {
  EXPECT_NEAR(analyzeReward(R"(
    proc main() { reward(1); reward(2); reward(3/2); }
  )"),
              4.5, 1e-9);
}

TEST(MdpDomainTest, NdetTakesMax) {
  EXPECT_NEAR(analyzeReward(R"(
    proc main() { if star { reward(5); } else { reward(1); } }
  )"),
              5.0, 1e-9);
}

TEST(MdpDomainTest, ProbMixes) {
  EXPECT_NEAR(analyzeReward(R"(
    proc main() { if prob(1/4) { reward(8); } else { reward(4); } }
  )"),
              5.0, 1e-9);
}

TEST(MdpDomainTest, GeometricLoop) {
  // E = 3/4 (1 + E)  =>  E = 3.
  EXPECT_NEAR(analyzeReward(R"(
    proc main() { while prob(3/4) { reward(1); } }
  )"),
              3.0, 1e-6);
}

TEST(MdpDomainTest, LinearRecursion) {
  // E = 1/2 (2 + E) + 1/2 * 1  =>  E = 3.
  EXPECT_NEAR(analyzeReward(R"(
    proc main() {
      if prob(1/2) { reward(2); main(); } else { reward(1); }
    }
  )"),
              3.0, 1e-6);
}

TEST(MdpDomainTest, MutualRecursion) {
  // a: E_a = 1 + 1/2 E_b ; b: E_b = 1/2 E_a.
  // => E_a = 1 + 1/4 E_a => E_a = 4/3; main calls a.
  EXPECT_NEAR(analyzeReward(R"(
    proc a() { reward(1); if prob(1/2) { b(); } }
    proc b() { if prob(1/2) { a(); } }
    proc main() { a(); }
  )"),
              4.0 / 3.0, 1e-6);
}

TEST(MdpDomainTest, DivergentNdetLoopWidensToInfinity) {
  double Reward = analyzeReward(R"(
    proc main() { while star { reward(1); } }
  )");
  EXPECT_TRUE(std::isinf(Reward));
}

TEST(MdpDomainTest, CertainLoopWithZeroRewardTerminatesAnalysis) {
  // Infinite loop but no reward: fixpoint is 0 (and the analysis must not
  // spin forever).
  EXPECT_NEAR(analyzeReward(R"(
    proc main() { while star { skip; } }
  )"),
              0.0, 1e-9);
}

TEST(MdpDomainTest, NdetBetweenLoopAndExitPrefersDivergence) {
  // The maximizing scheduler stays in the rewarding loop forever.
  double Reward = analyzeReward(R"(
    proc main() {
      while star { reward(2); }
      reward(1);
    }
  )");
  EXPECT_TRUE(std::isinf(Reward));
}

TEST(MdpDomainTest, RandomizedBinarySearchModelIsLogarithmic) {
  // A binary-search cost model on an array of size 8: each level costs one
  // comparison and halves the interval; expected comparisons = 3 ... 4.
  double Reward = analyzeReward(R"(
    proc level3() { reward(1); }
    proc level2() { reward(1); level3(); }
    proc level1() { reward(1); level2(); }
    proc main() { level1(); }
  )");
  EXPECT_NEAR(Reward, 3.0, 1e-9);
}

TEST(MdpDomainTest, SummariesArePerProcedure) {
  auto Prog = lang::parseProgramOrDie(R"(
    proc cheap() { reward(1); }
    proc pricey() { reward(10); }
    proc main() { if star { cheap(); } else { pricey(); } }
  )");
  cfg::ProgramGraph G = cfg::ProgramGraph::build(*Prog);
  MdpDomain Dom;
  auto Result = solve(G, Dom);
  EXPECT_NEAR(Result.Values[G.proc(Prog->findProc("cheap")).Entry], 1.0,
              1e-9);
  EXPECT_NEAR(Result.Values[G.proc(Prog->findProc("pricey")).Entry], 10.0,
              1e-9);
  EXPECT_NEAR(Result.Values[G.proc(Prog->findProc("main")).Entry], 10.0,
              1e-9);
}
