//===- tests/SchedulerSoundnessTest.cpp - BI lower bounds vs schedulers ---===//
//
// Thm 5.2 says the BI instantiation's γ_B is a probabilistic
// *under*-abstraction: the computed summary lower-bounds the posterior of
// the program under *every* resolution of nondeterminism. This suite
// samples many schedulers — constant, random, and state-dependent — with
// the Monte-Carlo interpreter and checks the analysis never exceeds any
// sampled posterior (up to sampling error), on hand-written and random
// nondeterministic Boolean programs.
//
//===----------------------------------------------------------------------===//

#include "cfg/HyperGraph.h"
#include "concrete/Interpreter.h"
#include "core/Solver.h"
#include "domains/BiDomain.h"
#include "lang/Parser.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace pmaf;
using namespace pmaf::core;
using namespace pmaf::domains;

namespace {

/// Analyzes a program and checks the BI lower bound against the sampled
/// posterior of each scheduler in \p Policies.
void expectLowerBoundsAllSchedulers(
    const char *Source,
    const std::vector<concrete::NdetPolicy> &Policies,
    int Samples = 30000) {
  auto Prog = lang::parseProgramOrDie(Source);
  BoolStateSpace Space(*Prog);
  cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
  BiDomain Dom(Space);
  SolverOptions Opts;
  Opts.UseWidening = false;
  auto Result = solve(Graph, Dom, Opts);
  std::vector<double> Prior(Space.numStates(), 0.0);
  Prior[0] = 1.0;
  std::vector<double> Bound = Dom.posterior(
      Result.Values[Graph.proc(Prog->findProc("main")).Entry], Prior);

  unsigned NumVars = Space.numVars();
  for (size_t PolicyIndex = 0; PolicyIndex != Policies.size();
       ++PolicyIndex) {
    concrete::Interpreter Interp(*Prog,
                                 0xBEEF + 31 * PolicyIndex);
    std::vector<double> Counts(Space.numStates(), 0.0);
    for (int I = 0; I != Samples; ++I) {
      auto Run = Interp.run(Prog->findProc("main"),
                            std::vector<double>(NumVars, 0.0), 50000,
                            Policies[PolicyIndex]);
      if (!Run.terminated())
        continue;
      size_t State = 0;
      for (unsigned V = 0; V != NumVars; ++V)
        if (Run.State[V] != 0.0)
          State |= size_t(1) << V;
      Counts[State] += 1.0;
    }
    for (size_t S = 0; S != Bound.size(); ++S)
      EXPECT_LE(Bound[S], Counts[S] / Samples + 0.02)
          << "scheduler " << PolicyIndex << ", state " << S << "\n"
          << Source;
  }
}

std::vector<concrete::NdetPolicy> standardSchedulers() {
  return {
      nullptr, // uniformly random
      [](const std::vector<double> &) { return true; },
      [](const std::vector<double> &) { return false; },
      // State-dependent: branch on the first variable.
      [](const std::vector<double> &State) { return State[0] != 0.0; },
      [](const std::vector<double> &State) { return State[0] == 0.0; },
  };
}

} // namespace

TEST(SchedulerSoundnessTest, NdetAssignments) {
  expectLowerBoundsAllSchedulers(R"(
    bool a, b;
    proc main() {
      a ~ bernoulli(0.5);
      if star { b := a; } else { b := true; }
    }
  )",
                                 standardSchedulers());
}

TEST(SchedulerSoundnessTest, NdetAroundConditioning) {
  expectLowerBoundsAllSchedulers(R"(
    bool a, b;
    proc main() {
      a ~ bernoulli(0.5);
      if star { observe(a); } else { skip; }
      b := a;
    }
  )",
                                 standardSchedulers());
}

TEST(SchedulerSoundnessTest, NdetLoopExit) {
  expectLowerBoundsAllSchedulers(R"(
    bool a, b;
    proc main() {
      a := true;
      while (a) {
        b ~ bernoulli(0.5);
        if star { a := b; } else { a := false; }
      }
    }
  )",
                                 standardSchedulers());
}

TEST(SchedulerSoundnessTest, AgreeingBranchesAreExact) {
  // §1's point: when both nondeterministic branches denote the same
  // distribution, the lower bound is the exact posterior under every
  // scheduler.
  const char *Source = R"(
    bool r;
    proc main() {
      if star {
        if prob(0.5) { r := true; } else { r := false; }
      } else {
        if prob(0.5) { r := true; } else { r := false; }
      }
    }
  )";
  expectLowerBoundsAllSchedulers(Source, standardSchedulers());
  // And the bound itself is 1/2 on both states (not merely <=).
  auto Prog = lang::parseProgramOrDie(Source);
  BoolStateSpace Space(*Prog);
  cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
  BiDomain Dom(Space);
  SolverOptions Opts;
  Opts.UseWidening = false;
  auto Result = solve(Graph, Dom, Opts);
  std::vector<double> Bound =
      Dom.posterior(Result.Values[Graph.proc(0).Entry], {1.0, 0.0});
  EXPECT_NEAR(Bound[0], 0.5, 1e-12);
  EXPECT_NEAR(Bound[1], 0.5, 1e-12);
}

TEST(SchedulerSoundnessTest, RandomNdetPrograms) {
  Rng R(0xFACE);
  for (int Round = 0; Round != 6; ++Round) {
    // Small random nondeterministic programs assembled from a template
    // pool (assignments, sampling, ndet branches, a prob loop).
    std::string Body;
    const char *Pool[] = {
        "a ~ bernoulli(0.4);\n",
        "b := a;\n",
        "if star { a := true; } else { a := b; }\n",
        "if star { b ~ bernoulli(0.7); } else { skip; }\n",
        "while prob(0.5) { if star { a := b; } else { b := a; } }\n",
    };
    for (int S = 0; S != 4; ++S)
      Body += Pool[R.below(std::size(Pool))];
    std::string Source = "bool a, b; proc main() { " + Body + " }";
    expectLowerBoundsAllSchedulers(Source.c_str(), standardSchedulers(),
                                   12000);
  }
}
