//===- tests/BiDomainTest.cpp - Bayesian-inference instantiation tests ----===//

#include "cfg/HyperGraph.h"
#include "concrete/Interpreter.h"
#include "core/Solver.h"
#include "domains/BiDomain.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace pmaf;
using namespace pmaf::core;
using namespace pmaf::domains;

namespace {

/// Holds together everything needed to query one BI analysis run.
struct BiRun {
  std::unique_ptr<lang::Program> Prog;
  std::unique_ptr<cfg::ProgramGraph> Graph;
  std::unique_ptr<BoolStateSpace> Space;
  std::unique_ptr<BiDomain> Dom;
  AnalysisResult<Matrix> Result;

  explicit BiRun(const char *Source) {
    Prog = lang::parseProgramOrDie(Source);
    Graph = std::make_unique<cfg::ProgramGraph>(
        cfg::ProgramGraph::build(*Prog));
    Space = std::make_unique<BoolStateSpace>(*Prog);
    Dom = std::make_unique<BiDomain>(*Space);
    SolverOptions Opts;
    Opts.UseWidening = false; // §5.1: BI needs no widening.
    Result = solve(*Graph, *Dom, Opts);
  }

  /// Procedure summary of `main`.
  const Matrix &summary() const {
    return Result.Values[Graph->proc(Prog->findProc("main")).Entry];
  }

  /// Posterior over post-states starting from the all-false pre-state.
  std::vector<double> posteriorFromZero() const {
    std::vector<double> Prior(Space->numStates(), 0.0);
    Prior[0] = 1.0;
    return Dom->posterior(summary(), Prior);
  }
};

} // namespace

TEST(BiDomainTest, SkipIsIdentity) {
  BiRun Run("bool b; proc main() { skip; }");
  EXPECT_EQ(Run.summary(), Matrix::identity(2));
}

TEST(BiDomainTest, AssignmentMovesMass) {
  BiRun Run("bool b; proc main() { b := true; }");
  // Every pre-state maps to the b=true state with probability 1.
  const Matrix &S = Run.summary();
  for (size_t Pre = 0; Pre != 2; ++Pre) {
    EXPECT_DOUBLE_EQ(S.at(Pre, 1), 1.0);
    EXPECT_DOUBLE_EQ(S.at(Pre, 0), 0.0);
  }
}

TEST(BiDomainTest, BernoulliSplitsMass) {
  BiRun Run("bool b; proc main() { b ~ bernoulli(0.25); }");
  const Matrix &S = Run.summary();
  for (size_t Pre = 0; Pre != 2; ++Pre) {
    EXPECT_DOUBLE_EQ(S.at(Pre, 1), 0.25);
    EXPECT_DOUBLE_EQ(S.at(Pre, 0), 0.75);
  }
}

TEST(BiDomainTest, SequencingComposesKernels) {
  // b ~ B(1/2) then flip via conditional assignment encoded with observe-
  // free branching: if (b) b := false else b := true.
  BiRun Run(R"(
    bool b;
    proc main() {
      b ~ bernoulli(0.5);
      if (b) { b := false; } else { b := true; }
    }
  )");
  const Matrix &S = Run.summary();
  for (size_t Pre = 0; Pre != 2; ++Pre) {
    EXPECT_DOUBLE_EQ(S.at(Pre, 0), 0.5);
    EXPECT_DOUBLE_EQ(S.at(Pre, 1), 0.5);
  }
}

TEST(BiDomainTest, Figure1aPosterior) {
  // §2.2: P[b1=F,b2=F] = 0 and the other three states carry 1/3 each, and
  // the program terminates almost surely (posterior sums to 1).
  BiRun Run(R"(
    bool b1, b2;
    proc main() {
      b1 ~ bernoulli(0.5);
      b2 ~ bernoulli(0.5);
      while (!b1 && !b2) {
        b1 ~ bernoulli(0.5);
        b2 ~ bernoulli(0.5);
      }
    }
  )");
  std::vector<double> Post = Run.posteriorFromZero();
  ASSERT_EQ(Post.size(), 4u);
  EXPECT_NEAR(Post[0], 0.0, 1e-9);       // b1=F b2=F
  EXPECT_NEAR(Post[1], 1.0 / 3, 1e-9);   // b1=T b2=F
  EXPECT_NEAR(Post[2], 1.0 / 3, 1e-9);   // b1=F b2=T
  EXPECT_NEAR(Post[3], 1.0 / 3, 1e-9);   // b1=T b2=T
  EXPECT_NEAR(Post[0] + Post[1] + Post[2] + Post[3], 1.0, 1e-9);
}

TEST(BiDomainTest, NodePropertyOfSection23) {
  // §2.3: at the loop head v1 of Fig 1a, the probability of terminating in
  // (b1=T, b2=T) is [b1 ∧ b2] + [¬b1 ∧ ¬b2]/3.
  BiRun Run(R"(
    bool b1, b2;
    proc main() {
      b1 ~ bernoulli(0.5);
      b2 ~ bernoulli(0.5);
      while (!b1 && !b2) {
        b1 ~ bernoulli(0.5);
        b2 ~ bernoulli(0.5);
      }
    }
  )");
  // The loop head is the destination of the second sampling edge.
  const cfg::HyperEdge *E1 = Run.Graph->outgoing(Run.Graph->proc(0).Entry);
  const cfg::HyperEdge *E2 = Run.Graph->outgoing(E1->Dsts[0]);
  unsigned Head = E2->Dsts[0];
  const Matrix &AtHead = Run.Result.Values[Head];
  size_t TT = 3; // b1=T, b2=T bitmask
  EXPECT_NEAR(AtHead.at(TT, TT), 1.0, 1e-9);  // [b1 ∧ b2] = 1
  EXPECT_NEAR(AtHead.at(0, TT), 1.0 / 3, 1e-9); // [¬b1 ∧ ¬b2]/3
  EXPECT_NEAR(AtHead.at(1, TT), 0.0, 1e-9);   // (T,F) exits immediately
  EXPECT_NEAR(AtHead.at(1, 1), 1.0, 1e-9);    // ... in its own state
}

TEST(BiDomainTest, ObserveConditionsSubProbability) {
  BiRun Run(R"(
    bool b1, b2;
    proc main() {
      b1 ~ bernoulli(0.5);
      b2 ~ bernoulli(0.5);
      observe(b1 || b2);
    }
  )");
  std::vector<double> Post = Run.posteriorFromZero();
  EXPECT_NEAR(Post[0], 0.0, 1e-12);
  EXPECT_NEAR(Post[1], 0.25, 1e-12);
  EXPECT_NEAR(Post[2], 0.25, 1e-12);
  EXPECT_NEAR(Post[3], 0.25, 1e-12);
  // Sub-probability: 1/4 of the mass was rejected by conditioning.
  EXPECT_NEAR(Post[1] + Post[2] + Post[3], 0.75, 1e-12);
}

TEST(BiDomainTest, DivergenceLosesMass) {
  // Diverges with probability 1/2: posterior sums to 1/2 (footnote 1).
  BiRun Run(R"(
    bool b;
    proc main() {
      b ~ bernoulli(0.5);
      if (b) { while (true) { skip; } }
    }
  )");
  std::vector<double> Post = Run.posteriorFromZero();
  EXPECT_NEAR(Post[0] + Post[1], 0.5, 1e-9);
  EXPECT_NEAR(Post[0], 0.5, 1e-9); // Survivors have b = false.
}

TEST(BiDomainTest, NdetGivesLowerBounds) {
  // The two branches force b to different values, so the guaranteed lower
  // bound on any post-state probability is 0.
  BiRun Run(R"(
    bool b;
    proc main() { if star { b := true; } else { b := false; } }
  )");
  EXPECT_EQ(Run.summary(), Matrix::zero(2, 2));
}

TEST(BiDomainTest, NdetAgreeingBranchesKeepMass) {
  // §1's PAI comparison, Boolean rendition: both nondeterministic branches
  // describe the same distribution, so resolving nondeterminism outside
  // (PMAF semantics) keeps the full posterior; the lower bound is exact.
  BiRun Run(R"(
    bool r;
    proc main() {
      if star {
        if prob(0.5) { r := true; } else { r := false; }
      } else {
        if prob(0.5) { r := true; } else { r := false; }
      }
    }
  )");
  std::vector<double> Post = Run.posteriorFromZero();
  EXPECT_NEAR(Post[0], 0.5, 1e-12);
  EXPECT_NEAR(Post[1], 0.5, 1e-12);
}

TEST(BiDomainTest, InterproceduralSummaryComposition) {
  BiRun Run(R"(
    bool b;
    proc flip() { b ~ bernoulli(0.5); }
    proc main() { flip(); flip(); }
  )");
  // Two independent fair flips: posterior is (1/2, 1/2) from any pre-state.
  const Matrix &S = Run.summary();
  for (size_t Pre = 0; Pre != 2; ++Pre) {
    EXPECT_NEAR(S.at(Pre, 0), 0.5, 1e-12);
    EXPECT_NEAR(S.at(Pre, 1), 0.5, 1e-12);
  }
  // And the helper's own summary is the single-flip kernel.
  const Matrix &Flip =
      Run.Result.Values[Run.Graph->proc(Run.Prog->findProc("flip")).Entry];
  EXPECT_NEAR(Flip.at(0, 1), 0.5, 1e-12);
}

TEST(BiDomainTest, RecursiveProcedureTerminatesAlmostSurely) {
  BiRun Run(R"(
    bool b;
    proc main() {
      b ~ bernoulli(0.5);
      if (b) { main(); }
    }
  )");
  // Almost-sure termination with b = false at the end.
  std::vector<double> Post = Run.posteriorFromZero();
  EXPECT_NEAR(Post[0], 1.0, 1e-6);
  EXPECT_NEAR(Post[1], 0.0, 1e-6);
}

TEST(BiDomainTest, PosteriorMatchesMonteCarlo) {
  const char *Source = R"(
    bool b1, b2, b3;
    proc main() {
      b1 ~ bernoulli(0.3);
      b2 ~ bernoulli(0.6);
      while (b1 && b2) {
        b1 ~ bernoulli(0.3);
        b3 := b1;
      }
      observe(b2 || b3);
    }
  )";
  BiRun Run(Source);
  std::vector<double> Post = Run.posteriorFromZero();

  concrete::Interpreter Interp(*Run.Prog, 2024);
  const int N = 200000;
  std::vector<double> Counts(8, 0.0);
  for (int I = 0; I != N; ++I) {
    auto R = Interp.run(Run.Prog->findProc("main"),
                        std::vector<double>(3, 0.0), 10000);
    if (!R.terminated())
      continue;
    size_t State = 0;
    for (unsigned V = 0; V != 3; ++V)
      if (R.State[V] != 0.0)
        State |= size_t(1) << V;
    Counts[State] += 1.0;
  }
  for (size_t S = 0; S != 8; ++S)
    EXPECT_NEAR(Post[S], Counts[S] / N, 0.01)
        << "state " << Run.Space->stateToString(S);
}
