//===- tests/LeiaDomainTest.cpp - Expectation-invariant analysis tests ----===//

#include "cfg/HyperGraph.h"
#include "concrete/Interpreter.h"
#include "core/Solver.h"
#include "domains/LeiaDomain.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace pmaf;
using namespace pmaf::core;
using namespace pmaf::domains;

namespace {

/// One LEIA analysis run with everything needed for queries.
struct LeiaRun {
  std::unique_ptr<lang::Program> Prog;
  std::unique_ptr<cfg::ProgramGraph> Graph;
  std::unique_ptr<LeiaDomain> Dom;
  AnalysisResult<LeiaValue> Result;

  explicit LeiaRun(const char *Source) {
    Prog = lang::parseProgramOrDie(Source);
    Graph = std::make_unique<cfg::ProgramGraph>(
        cfg::ProgramGraph::build(*Prog));
    Dom = std::make_unique<LeiaDomain>(*Prog);
    SolverOptions Opts;
    Opts.WideningDelay = 2;
    Result = solve(*Graph, *Dom, Opts);
    EXPECT_TRUE(Result.Stats.Converged);
  }

  const LeiaValue &summary() const {
    return Result.Values[Graph->proc(Prog->findProc("main")).Entry];
  }

  /// E[objective . x'] evaluated from \p Pre; returns {lo, hi} as doubles
  /// (infinity for unbounded).
  std::pair<double, double>
  bounds(std::vector<int64_t> Objective, std::vector<int64_t> Pre) const {
    std::vector<Rational> Obj, PreR;
    for (int64_t O : Objective)
      Obj.push_back(Rational(O));
    for (int64_t P : Pre)
      PreR.push_back(Rational(P));
    auto [Lo, Hi] = Dom->expectationBounds(summary(), Obj, PreR);
    double L = Lo ? Lo->toDouble() : -HUGE_VAL;
    double H = Hi ? Hi->toDouble() : HUGE_VAL;
    return {L, H};
  }

  bool hasInvariant(const std::string &Text) const {
    for (const std::string &Inv : Dom->describeInvariants(summary()))
      if (Inv == Text)
        return true;
    return false;
  }

  std::string allInvariants() const {
    std::string Out;
    for (const std::string &Inv : Dom->describeInvariants(summary()))
      Out += Inv + "\n";
    return Out;
  }
};

} // namespace

TEST(LeiaDomainTest, IdentityProgram) {
  LeiaRun Run("real x; proc main() { skip; }");
  auto [Lo, Hi] = Run.bounds({1}, {7});
  EXPECT_DOUBLE_EQ(Lo, 7.0);
  EXPECT_DOUBLE_EQ(Hi, 7.0);
}

TEST(LeiaDomainTest, DeterministicAssignment) {
  LeiaRun Run("real x, y; proc main() { x := x + 2 * y + 1; }");
  // E[x'] = x + 2y + 1, E[y'] = y.
  auto [XLo, XHi] = Run.bounds({1, 0}, {3, 5});
  EXPECT_DOUBLE_EQ(XLo, 14.0);
  EXPECT_DOUBLE_EQ(XHi, 14.0);
  auto [YLo, YHi] = Run.bounds({0, 1}, {3, 5});
  EXPECT_DOUBLE_EQ(YLo, 5.0);
  EXPECT_DOUBLE_EQ(YHi, 5.0);
}

TEST(LeiaDomainTest, UniformSampleMean) {
  LeiaRun Run("real z; proc main() { z ~ uniform(0, 2); }");
  auto [Lo, Hi] = Run.bounds({1}, {9});
  EXPECT_DOUBLE_EQ(Lo, 1.0);
  EXPECT_DOUBLE_EQ(Hi, 1.0);
  EXPECT_TRUE(Run.hasInvariant("E[z'] == 1")) << Run.allInvariants();
}

TEST(LeiaDomainTest, ProbChoiceMixesExpectations) {
  LeiaRun Run(R"(
    real x;
    proc main() { if prob(1/4) { x := x + 8; } else { x := x + 4; } }
  )");
  // E[x'] = 1/4 (x+8) + 3/4 (x+4) = x + 5.
  auto [Lo, Hi] = Run.bounds({1}, {10});
  EXPECT_DOUBLE_EQ(Lo, 15.0);
  EXPECT_DOUBLE_EQ(Hi, 15.0);
}

TEST(LeiaDomainTest, NdetChoiceGivesRange) {
  LeiaRun Run(R"(
    real x;
    proc main() { if star { x := x + 1; } else { x := x + 3; } }
  )");
  auto [Lo, Hi] = Run.bounds({1}, {0});
  EXPECT_DOUBLE_EQ(Lo, 1.0);
  EXPECT_DOUBLE_EQ(Hi, 3.0);
}

TEST(LeiaDomainTest, SequencingComposesByTowerProperty) {
  LeiaRun Run(R"(
    real x;
    proc main() { x ~ uniform(x, x + 2); x := 7 * x; }
  )");
  // E[x'] = 7 (x + 1) = 7x + 7 (the §5.3 tower-property example).
  auto [Lo, Hi] = Run.bounds({1}, {2});
  EXPECT_DOUBLE_EQ(Lo, 21.0);
  EXPECT_DOUBLE_EQ(Hi, 21.0);
}

TEST(LeiaDomainTest, PaiComparisonFromSection1) {
  // §1: PMAF resolves nondeterminism outside, so both branches are the
  // same distribution and E[r'] = 1.5 exactly; PAI-style analyses can
  // only conclude 1.25 <= E[r'] <= 1.75.
  LeiaRun Run(R"(
    real r;
    proc main() {
      if star {
        if prob(1/2) { r := 1; } else { r := 2; }
      } else {
        if prob(1/2) { r := 1; } else { r := 2; }
      }
    }
  )");
  auto [Lo, Hi] = Run.bounds({1}, {0});
  EXPECT_DOUBLE_EQ(Lo, 1.5);
  EXPECT_DOUBLE_EQ(Hi, 1.5);
}

TEST(LeiaDomainTest, Figure1bGameInvariants) {
  // §2.2: E[x' + y'] = x + y + 3, E[z'] = z/4 + 3/4, x <= E[x'] <= x + 3.
  LeiaRun Run(R"(
    real x, y, z;
    proc main() {
      while prob(3/4) {
        z ~ uniform(0, 2);
        if star { x := x + z; } else { y := y + z; }
      }
    }
  )");
  auto [SumLo, SumHi] = Run.bounds({1, 1, 0}, {1, 2, 0});
  EXPECT_NEAR(SumLo, 6.0, 1e-6);
  EXPECT_NEAR(SumHi, 6.0, 1e-6);
  auto [ZLo, ZHi] = Run.bounds({0, 0, 1}, {0, 0, 2});
  EXPECT_NEAR(ZLo, 0.5 + 0.75, 1e-6);
  EXPECT_NEAR(ZHi, 0.5 + 0.75, 1e-6);
  auto [XLo, XHi] = Run.bounds({1, 0, 0}, {1, 2, 0});
  EXPECT_NEAR(XLo, 1.0, 1e-6);
  EXPECT_NEAR(XHi, 4.0, 1e-6);
}

TEST(LeiaDomainTest, Example58PessimisticConditionalWidening) {
  // Obs 5.7 / Ex 5.8: E[x' - y'] = x - y holds for the loop body but NOT
  // for the whole loop; at exit x == y, so E[x' - y'] = 0.
  LeiaRun Run(R"(
    real x, y;
    proc main() {
      while (!(x == y)) {
        if prob(1/2) { x := x + 1; } else { y := y + 1; }
      }
    }
  )");
  auto [Lo, Hi] = Run.bounds({1, -1}, {5, 3});
  EXPECT_DOUBLE_EQ(Lo, 0.0);
  EXPECT_DOUBLE_EQ(Hi, 0.0);
}

TEST(LeiaDomainTest, LinearRecursion) {
  // E = 1/2 (E o (x+2)) + 1/2 (x+1)  =>  E[x'] = x + 3.
  LeiaRun Run(R"(
    real x;
    proc main() {
      if prob(1/2) { x := x + 2; main(); } else { x := x + 1; }
    }
  )");
  auto [Lo, Hi] = Run.bounds({1}, {4});
  EXPECT_NEAR(Lo, 7.0, 1e-6);
  EXPECT_NEAR(Hi, 7.0, 1e-6);
}

TEST(LeiaDomainTest, InterproceduralSummaries) {
  LeiaRun Run(R"(
    real x;
    proc add3() { x := x + 3; }
    proc main() { add3(); add3(); }
  )");
  auto [Lo, Hi] = Run.bounds({1}, {1});
  EXPECT_DOUBLE_EQ(Lo, 7.0);
  EXPECT_DOUBLE_EQ(Hi, 7.0);
  const LeiaValue &Helper =
      Run.Result.Values[Run.Graph->proc(Run.Prog->findProc("add3")).Entry];
  auto [HLo, HHi] = Run.Dom->expectationBounds(Helper, {Rational(1)},
                                               {Rational(0)});
  ASSERT_TRUE(HLo && HHi);
  EXPECT_EQ(*HLo, Rational(3));
  EXPECT_EQ(*HHi, Rational(3));
}

TEST(LeiaDomainTest, ObserveRestrictsSupport) {
  LeiaRun Run(R"(
    real x;
    proc main() { x ~ uniform(0, 10); observe(x <= 4); }
  )");
  // After conditioning, the support is [0, 4]; expectations can only be
  // bounded pessimistically (mass rescaling), E[x'] in [0, 4].
  auto [Lo, Hi] = Run.bounds({1}, {0});
  EXPECT_GE(Lo, 0.0);
  EXPECT_LE(Hi, 4.0);
  // The P component knows the hard bound.
  EXPECT_FALSE(Run.summary().P.isEmpty());
}

TEST(LeiaDomainTest, DivergentLoopIsBottom) {
  LeiaRun Run(R"(
    real x;
    proc main() { while (true) { x := x + 1; } }
  )");
  EXPECT_TRUE(Run.summary().P.isEmpty());
}

TEST(LeiaDomainTest, NonlinearAssignmentLosesOnlyTarget) {
  LeiaRun Run(R"(
    real x, y;
    proc main() { x := x * x; }
  )");
  // x' is unconstrained but y is preserved exactly.
  auto [YLo, YHi] = Run.bounds({0, 1}, {2, 5});
  EXPECT_DOUBLE_EQ(YLo, 5.0);
  EXPECT_DOUBLE_EQ(YHi, 5.0);
  auto [XLo, XHi] = Run.bounds({1, 0}, {2, 5});
  EXPECT_EQ(XHi, HUGE_VAL);
  EXPECT_LE(XLo, 0.0);
}

TEST(LeiaDomainTest, InvariantStringsMentionExpectations) {
  LeiaRun Run("real x; proc main() { x := x + 1; }");
  EXPECT_TRUE(Run.hasInvariant("E[x'] == x + 1")) << Run.allInvariants();
}

TEST(LeiaDomainTest, ExpectationMatchesMonteCarlo) {
  const char *Source = R"(
    real x, y, z;
    proc main() {
      while prob(3/4) {
        z ~ uniform(0, 2);
        if star { x := x + z; } else { y := y + z; }
      }
    }
  )";
  LeiaRun Run(Source);
  concrete::Interpreter Interp(*Run.Prog, 5150);
  const int N = 60000;
  double Sum = 0.0;
  for (int I = 0; I != N; ++I) {
    auto R = Interp.run(0, {1.0, 2.0, 0.0}, 100000);
    ASSERT_TRUE(R.terminated());
    Sum += R.State[0] + R.State[1];
  }
  double Expected = Sum / N;
  auto [Lo, Hi] = Run.bounds({1, 1, 0}, {1, 2, 0});
  EXPECT_LE(Lo, Expected + 0.1);
  EXPECT_GE(Hi, Expected - 0.1);
}

TEST(LeiaDomainTest, BottomAbsorbsComposition) {
  LeiaDomain Dom(*lang::parseProgramOrDie("real x; proc main() { skip; }"));
  LeiaValue Bot = Dom.bottom(), One = Dom.one();
  EXPECT_TRUE(Dom.equal(Dom.extend(Bot, One), Bot));
  EXPECT_TRUE(Dom.equal(Dom.extend(One, Bot), Bot));
  EXPECT_TRUE(Dom.equal(Dom.extend(One, One), One));
  EXPECT_TRUE(Dom.leq(Bot, One));
  EXPECT_FALSE(Dom.leq(One, Bot));
}
