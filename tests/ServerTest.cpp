//===- tests/ServerTest.cpp - Daemon, sessions, incremental solving -------===//
//
// Part of the PMAF reproduction. MIT license.
//
// Three layers of coverage for the pmafd stack:
//
//  1. Solver warm-starts (core::WarmStart): for every procedure of
//     multi-procedure programs — the paper benchmarks and the random
//     program families — re-solving with that procedure's dependence
//     closure dirty must reproduce the cold fixpoint bit-for-bit, under
//     both the sequential and the parallel scheduler.
//
//  2. Sessions: editing each procedure body in turn, the incremental
//     analyze must report the same fingerprint and the same checker
//     verdicts as a from-scratch session over the edited source.
//
//  3. The wire protocol: JSON value semantics (strict unsigned reads,
//     escaping, round-trips) and a live socket conversation against an
//     in-process Daemon, including the stable error codes.
//
//===----------------------------------------------------------------------===//

#include "benchmarks/Programs.h"
#include "cfg/HyperGraph.h"
#include "cfg/Wto.h"
#include "core/CompiledProgram.h"
#include "core/Solver.h"
#include "domains/BiDomain.h"
#include "domains/LeiaDomain.h"
#include "domains/MdpDomain.h"
#include "lang/Ast.h"
#include "lang/Parser.h"
#include "server/Daemon.h"
#include "server/Protocol.h"
#include "server/Session.h"
#include "support/Diagnostics.h"

#include "RandomProgramGen.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace pmaf;
using namespace pmaf::testgen;

namespace {

std::unique_ptr<lang::Program> parseOrDie(const std::string &Source) {
  DiagnosticEngine Diags;
  lang::ParseResult Parsed = lang::parseProgram(Source, Diags);
  EXPECT_TRUE(Parsed) << Diags.renderAll();
  return std::move(Parsed.Prog);
}

/// Nodes of procedure \p P — the seed set of an edit to its body.
std::vector<unsigned> nodesOfProc(const cfg::ProgramGraph &Graph,
                                  unsigned P) {
  std::vector<unsigned> Nodes;
  for (unsigned V = 0; V != Graph.numNodes(); ++V)
    if (Graph.procOf(V) == P)
      Nodes.push_back(V);
  return Nodes;
}

/// Cold-solves \p Prog, then for every procedure re-solves warm with that
/// procedure's dependence closure dirty and demands value-identical
/// fixpoints. \p Configure applies the domain's solver preset.
template <typename D, typename ConfigureFn>
void expectWarmMatchesCold(const lang::Program &Prog, D &Dom,
                           const cfg::ProgramGraph &Graph, unsigned Jobs,
                           ConfigureFn Configure) {
  core::CompiledProgram<D> Compiled(Graph, Dom);
  core::SolverOptions Opts;
  Configure(Opts);
  Opts.Jobs = Jobs;
  if (Jobs > 1)
    Opts.Strategy = core::IterationStrategy::ParallelScc;
  auto Cold = core::solve(Compiled, Opts);
  ASSERT_TRUE(Cold.Stats.Converged);
  for (unsigned P = 0; P != Graph.numProcs(); ++P) {
    core::WarmStart<typename D::Value> Warm;
    Warm.Values = Cold.Values;
    Warm.Dirty =
        cfg::reachableFrom(Compiled.dependents(), nodesOfProc(Graph, P));
    auto WarmRes = core::solve(Compiled, Opts, nullptr, &Warm);
    ASSERT_TRUE(WarmRes.Stats.Converged);
    ASSERT_EQ(WarmRes.Values.size(), Cold.Values.size());
    for (unsigned V = 0; V != Graph.numNodes(); ++V)
      EXPECT_TRUE(Dom.equal(WarmRes.Values[V], Cold.Values[V]))
          << "proc " << P << " node " << V << " jobs " << Jobs;
    uint64_t CleanNodes = 0;
    for (char Dirty : Warm.Dirty)
      CleanNodes += Dirty == 0;
    EXPECT_EQ(WarmRes.Stats.NodesReused, CleanNodes);
  }
}

void expectBiWarmMatchesCold(const lang::Program &Prog, unsigned Jobs) {
  cfg::ProgramGraph Graph = cfg::ProgramGraph::build(Prog);
  domains::BoolStateSpace Space(Prog);
  domains::BiDomain Dom(Space);
  expectWarmMatchesCold(Prog, Dom, Graph, Jobs, [](core::SolverOptions &O) {
    O.UseWidening = false;
  });
}

} // namespace

//===----------------------------------------------------------------------===//
// 1. Solver warm-starts
//===----------------------------------------------------------------------===//

TEST(ServerSolverTest, BiWarmStartBitIdenticalOnBenchmarks) {
  for (const benchmarks::BenchProgram &BP : benchmarks::biPrograms()) {
    auto Prog = parseOrDie(BP.Source);
    ASSERT_TRUE(Prog) << BP.Name;
    for (unsigned Jobs : {1u, 4u})
      expectBiWarmMatchesCold(*Prog, Jobs);
  }
}

TEST(ServerSolverTest, BiWarmStartBitIdenticalOnRandomFamilies) {
  for (const BoolGenConfig &Config :
       {BoolGenConfig::callHeavy(), BoolGenConfig::mixed()}) {
    for (uint64_t Seed : {11u, 23u, 47u}) {
      Rng R(Seed);
      auto Prog = randomBoolProgram(R, Config);
      ASSERT_GT(Prog->Procs.size(), 1u);
      for (unsigned Jobs : {1u, 4u})
        expectBiWarmMatchesCold(*Prog, Jobs);
    }
  }
}

TEST(ServerSolverTest, MdpWarmStartBitIdenticalOnBenchmarks) {
  for (const benchmarks::BenchProgram &BP : benchmarks::mdpPrograms()) {
    auto Prog = parseOrDie(BP.Source);
    ASSERT_TRUE(Prog) << BP.Name;
    cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
    domains::MdpDomain Dom;
    for (unsigned Jobs : {1u, 4u})
      expectWarmMatchesCold(*Prog, Dom, Graph, Jobs,
                            [](core::SolverOptions &O) {
                              O.WideningDelay = 10000;
                            });
  }
}

TEST(ServerSolverTest, LeiaWarmStartBitIdenticalOnRandomPrograms) {
  for (uint64_t Seed : {5u, 19u}) {
    Rng R(Seed);
    auto Prog = randomRealProgram(R, 3, 4);
    cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
    domains::LeiaDomainT<poly::LadderValue> Dom(*Prog);
    for (unsigned Jobs : {1u, 4u})
      expectWarmMatchesCold(*Prog, Dom, Graph, Jobs,
                            [](core::SolverOptions &) {});
  }
}

//===----------------------------------------------------------------------===//
// 2. Sessions: incremental edits vs from-scratch
//===----------------------------------------------------------------------===//

namespace {

/// Edits procedure \p P of the seeded program \p SeedA by splicing in the
/// same procedure's body from the differently-seeded sibling \p SeedB
/// (same generator config, so the variable table and procedure skeleton
/// are unchanged and the edit stays body-only).
std::string splicedEdit(const BoolGenConfig &Config, uint64_t SeedA,
                        uint64_t SeedB, unsigned P) {
  Rng RA(SeedA);
  auto A = randomBoolProgram(RA, Config);
  Rng RB(SeedB);
  auto B = randomBoolProgram(RB, Config);
  A->Procs[P].Body = std::move(B->Procs[P].Body);
  return lang::toString(*A);
}

void expectSessionEditBitIdentical(const BoolGenConfig &Config,
                                   uint64_t SeedA, uint64_t SeedB,
                                   unsigned Jobs) {
  Rng RA(SeedA);
  auto A = randomBoolProgram(RA, Config);
  const std::string SourceA = lang::toString(*A);
  const unsigned NumProcs = static_cast<unsigned>(A->Procs.size());
  for (unsigned P = 0; P != NumProcs; ++P) {
    const std::string Edited = splicedEdit(Config, SeedA, SeedB, P);

    server::Session Warm;
    server::LoadReply LR =
        Warm.load(SourceA, "bi", core::NumericBackend::Ladder);
    ASSERT_TRUE(LR.Ok) << LR.Error;
    server::AnalyzeRequest Req;
    Req.Jobs = Jobs;
    if (Jobs > 1)
      Req.Strategy = core::IterationStrategy::ParallelScc;
    server::AnalyzeReply First = Warm.analyze(Req);
    ASSERT_TRUE(First.Ok) << First.Error;
    ASSERT_TRUE(First.Converged);
    server::EditReply ER = Warm.edit(Edited);
    ASSERT_TRUE(ER.Ok) << ER.Error;
    EXPECT_FALSE(ER.FullRebuild);
    server::AnalyzeReply Incremental = Warm.analyze(Req);
    ASSERT_TRUE(Incremental.Ok) << Incremental.Error;
    ASSERT_TRUE(Incremental.Converged);

    server::Session Cold;
    ASSERT_TRUE(Cold.load(Edited, "bi", core::NumericBackend::Ladder).Ok);
    server::AnalyzeReply FromScratch = Cold.analyze(Req);
    ASSERT_TRUE(FromScratch.Ok) << FromScratch.Error;
    ASSERT_TRUE(FromScratch.Converged);

    // The incremental fixpoint, its checker verdicts, and the exit code
    // must be indistinguishable from a from-scratch solve.
    EXPECT_EQ(Incremental.Fingerprint, FromScratch.Fingerprint)
        << "config proc " << P << " jobs " << Jobs;
    EXPECT_EQ(Incremental.ChecksJson, FromScratch.ChecksJson);
    EXPECT_EQ(Incremental.Exit, FromScratch.Exit);
    if (!ER.ChangedProcs.empty()) {
      EXPECT_TRUE(Incremental.Reuse.Incremental);
      if (ER.DirtyNodes < ER.TotalNodes)
        EXPECT_GT(Incremental.Reuse.NodesReused, 0u);
    }
  }
}

} // namespace

TEST(ServerSessionTest, EditEachProcedureBitIdenticalCallHeavy) {
  for (unsigned Jobs : {1u, 4u})
    expectSessionEditBitIdentical(BoolGenConfig::callHeavy(), 101, 202,
                                  Jobs);
}

TEST(ServerSessionTest, EditEachProcedureBitIdenticalMixed) {
  for (unsigned Jobs : {1u, 4u})
    expectSessionEditBitIdentical(BoolGenConfig::mixed(), 303, 404, Jobs);
}

TEST(ServerSessionTest, HelperEditReusesMostTransformerSlots) {
  // A small helper next to a large main: editing the helper must keep at
  // least half the transformer slots (the ISSUE's SERVED acceptance bar).
  const std::string Source = R"(
    bool a, b, c;
    proc helper() { c ~ bernoulli(1/4); }
    proc main() {
      a ~ bernoulli(1/2);
      b ~ bernoulli(1/3);
      helper();
      a := b;
      b := c;
      c := a;
      a := b;
    }
  )";
  const std::string Edited = R"(
    bool a, b, c;
    proc helper() { c ~ bernoulli(3/4); }
    proc main() {
      a ~ bernoulli(1/2);
      b ~ bernoulli(1/3);
      helper();
      a := b;
      b := c;
      c := a;
      a := b;
    }
  )";
  server::Session S;
  ASSERT_TRUE(S.load(Source, "bi", core::NumericBackend::Ladder).Ok);
  ASSERT_TRUE(S.analyze({}).Ok);
  server::EditReply ER = S.edit(Edited);
  ASSERT_TRUE(ER.Ok) << ER.Error;
  ASSERT_EQ(ER.ChangedProcs, std::vector<std::string>{"helper"});
  server::AnalyzeReply AR = S.analyze({});
  ASSERT_TRUE(AR.Ok);
  EXPECT_TRUE(AR.Reuse.Incremental);
  ASSERT_GT(AR.Reuse.TransformersTotal, 0u);
  EXPECT_GE(AR.Reuse.TransformersReused * 2, AR.Reuse.TransformersTotal)
      << AR.Reuse.TransformersReused << "/" << AR.Reuse.TransformersTotal;
}

TEST(ServerSessionTest, ShapeChangesFallBackToFullRebuild) {
  server::Session S;
  ASSERT_TRUE(S.load("bool a; proc main() { a := true; }", "bi",
                     core::NumericBackend::Ladder)
                  .Ok);
  ASSERT_TRUE(S.analyze({}).Ok);
  // New variable: the state space changed, values cannot map across.
  server::EditReply ER =
      S.edit("bool a, b; proc main() { a := true; b := a; }");
  ASSERT_TRUE(ER.Ok) << ER.Error;
  EXPECT_TRUE(ER.FullRebuild);
  server::AnalyzeReply AR = S.analyze({});
  ASSERT_TRUE(AR.Ok);
  EXPECT_FALSE(AR.Reuse.Incremental);
  EXPECT_EQ(S.counters().FullRebuilds, 1u);
}

TEST(ServerSessionTest, BadEditsKeepThePriorProgramResident) {
  server::Session S;
  ASSERT_TRUE(S.load("bool a; proc main() { a := true; }", "bi",
                     core::NumericBackend::Ladder)
                  .Ok);
  server::AnalyzeReply Before = S.analyze({});
  ASSERT_TRUE(Before.Ok);
  server::EditReply Broken = S.edit("bool a; proc main() { a := }");
  EXPECT_FALSE(Broken.Ok);
  EXPECT_EQ(Broken.ErrorCode, "parse-error");
  // The session still answers with the old program, bit-identically.
  server::AnalyzeReply After = S.analyze({});
  ASSERT_TRUE(After.Ok);
  EXPECT_EQ(After.Fingerprint, Before.Fingerprint);
}

TEST(ServerSessionTest, AnalyzeBeforeLoadFails) {
  server::Session S;
  server::AnalyzeReply AR = S.analyze({});
  EXPECT_FALSE(AR.Ok);
  EXPECT_EQ(AR.ErrorCode, "no-program");
}

//===----------------------------------------------------------------------===//
// 3. Protocol: JSON semantics and the live daemon
//===----------------------------------------------------------------------===//

TEST(ProtocolJsonTest, RoundTripAndStrictUnsigned) {
  std::string Error;
  auto J = server::Json::parse(
      R"({"a": 7, "b": [1, 2.5, "x"], "c": {"d": true, "e": null}})",
      &Error);
  ASSERT_TRUE(J) << Error;
  ASSERT_TRUE(J->isObject());
  ASSERT_NE(J->get("a"), nullptr);
  EXPECT_EQ(J->get("a")->asUnsigned(), std::optional<uint64_t>(7));
  EXPECT_EQ(J->get("b")->items().size(), 3u);
  // Strictness: fractions, signs, and overflow never coerce.
  EXPECT_FALSE(server::Json::parse("1.5")->asUnsigned().has_value());
  EXPECT_FALSE(server::Json::parse("-2")->asUnsigned().has_value());
  EXPECT_FALSE(
      server::Json::parse("18446744073709551616")->asUnsigned().has_value());
  EXPECT_EQ(server::Json::parse("18446744073709551615")->asUnsigned(),
            std::optional<uint64_t>(UINT64_MAX));
  // Dump/parse round trip preserves structure and escapes.
  server::Json Obj = server::Json::object();
  Obj.set("s", server::Json::string("a\"b\\c\n\t"));
  Obj.set("n", server::Json::number(uint64_t(123456789012345ull)));
  auto Back = server::Json::parse(Obj.dump(), &Error);
  ASSERT_TRUE(Back) << Error;
  EXPECT_EQ(Back->get("s")->asString(), "a\"b\\c\n\t");
  EXPECT_EQ(Back->get("n")->asUnsigned(),
            std::optional<uint64_t>(123456789012345ull));
}

TEST(ProtocolJsonTest, ParseErrorsAreReported) {
  std::string Error;
  EXPECT_FALSE(server::Json::parse("{\"a\":}", &Error));
  EXPECT_FALSE(Error.empty());
  EXPECT_FALSE(server::Json::parse("[1, 2", &Error));
  EXPECT_FALSE(server::Json::parse("{} trailing", &Error));
}

namespace {

/// A blocking protocol client for the in-process daemon.
class TestClient {
public:
  explicit TestClient(uint16_t Port) { open(Port); }
  ~TestClient() {
    if (Fd >= 0)
      ::close(Fd);
  }

  server::Json request(const std::string &Payload) {
    EXPECT_TRUE(server::writeFrame(Fd, Payload));
    std::string Reply, Error;
    EXPECT_TRUE(server::readFrame(Fd, Reply, Error)) << Error;
    std::string ParseError;
    auto J = server::Json::parse(Reply, &ParseError);
    EXPECT_TRUE(J) << ParseError;
    return J ? *J : server::Json();
  }

private:
  void open(uint16_t Port) {
    Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(Fd, 0);
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    Addr.sin_port = htons(Port);
    ASSERT_EQ(
        ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr), 0)
        << std::strerror(errno);
  }

  int Fd = -1;
};

std::string fieldString(const server::Json &J, const char *Key) {
  const server::Json *F = J.get(Key);
  return F ? F->asString() : std::string();
}

} // namespace

TEST(DaemonTest, LoadAnalyzeEditAnalyzeOverTheWire) {
  server::Daemon D;
  std::string Error;
  ASSERT_TRUE(D.start(Error)) << Error;
  {
    TestClient C(D.port());
    server::Json Load = C.request(
        R"({"cmd":"load","source":"bool x; proc helper() { x ~ bernoulli(3/4); } proc main() { assert_prob(x) >= 1/2; helper(); }"})");
    EXPECT_TRUE(Load.get("ok") && Load.get("ok")->asBool());
    server::Json First = C.request(R"({"cmd":"analyze"})");
    ASSERT_TRUE(First.get("ok") && First.get("ok")->asBool());
    const std::string FirstFp = fieldString(First, "fingerprint");
    EXPECT_FALSE(FirstFp.empty());

    server::Json Edit = C.request(
        R"({"cmd":"edit","source":"bool x; proc helper() { x ~ bernoulli(7/8); } proc main() { assert_prob(x) >= 1/2; helper(); }"})");
    ASSERT_TRUE(Edit.get("ok") && Edit.get("ok")->asBool());
    server::Json Incr = C.request(R"({"cmd":"analyze"})");
    ASSERT_TRUE(Incr.get("ok") && Incr.get("ok")->asBool());
    const server::Json *Reuse = Incr.get("reuse");
    ASSERT_NE(Reuse, nullptr);
    EXPECT_TRUE(Reuse->get("incremental")->asBool());

    server::Json ColdAgain = C.request(R"({"cmd":"analyze","cold":true})");
    ASSERT_TRUE(ColdAgain.get("ok") && ColdAgain.get("ok")->asBool());
    EXPECT_EQ(fieldString(Incr, "fingerprint"),
              fieldString(ColdAgain, "fingerprint"));
    EXPECT_NE(fieldString(Incr, "fingerprint"), FirstFp);

    server::Json Stats = C.request(R"({"cmd":"stats"})");
    EXPECT_TRUE(Stats.get("ok") && Stats.get("ok")->asBool());
    EXPECT_EQ(Stats.get("solves")->asUnsigned(),
              std::optional<uint64_t>(3));
  }
  D.requestStop();
  D.wait();
}

TEST(DaemonTest, StableErrorCodes) {
  server::Daemon D;
  std::string Error;
  ASSERT_TRUE(D.start(Error)) << Error;
  {
    TestClient C(D.port());
    EXPECT_EQ(fieldString(C.request("{\"cmd\":\"frobnicate\"}"), "code"),
              "unknown-command");
    EXPECT_EQ(fieldString(C.request("not json"), "code"), "protocol-error");
    EXPECT_EQ(fieldString(C.request("{\"cmd\":\"analyze\"}"), "code"),
              "unknown-session");
    EXPECT_EQ(
        fieldString(C.request("{\"cmd\":\"load\",\"source\":\"bool\"}"),
                    "code"),
        "parse-error");
    EXPECT_EQ(fieldString(C.request("{\"cmd\":\"load\"}"), "code"),
              "protocol-error");
    C.request(
        R"({"cmd":"load","source":"bool x; proc main() { x := true; }"})");
    EXPECT_EQ(
        fieldString(C.request(R"({"cmd":"analyze","jobs":1.5})"), "code"),
        "invalid-flag-value");
    EXPECT_EQ(
        fieldString(C.request(R"({"cmd":"analyze","strategy":"warp"})"),
                    "code"),
        "invalid-flag-value");
    EXPECT_EQ(fieldString(C.request(R"({"cmd":"configure","jobs":-1})"),
                          "code"),
              "invalid-flag-value");
  }
  D.requestStop();
  D.wait();
}

TEST(DaemonTest, ConcurrentClientsOnDistinctSessions) {
  server::Daemon D;
  std::string Error;
  ASSERT_TRUE(D.start(Error)) << Error;
  std::vector<std::thread> Clients;
  std::atomic<unsigned> Failures{0};
  for (int I = 0; I != 4; ++I)
    Clients.emplace_back([&D, &Failures, I] {
      TestClient C(D.port());
      const std::string Session = "s" + std::to_string(I);
      server::Json Load = C.request(
          "{\"cmd\":\"load\",\"session\":\"" + Session +
          "\",\"source\":\"bool a, b; proc main() { a ~ bernoulli(1/2); "
          "b := a; }\"}");
      if (!Load.get("ok") || !Load.get("ok")->asBool())
        Failures.fetch_add(1);
      for (int Round = 0; Round != 5; ++Round) {
        server::Json R = C.request("{\"cmd\":\"analyze\",\"session\":\"" +
                                   Session + "\"}");
        if (!R.get("ok") || !R.get("ok")->asBool())
          Failures.fetch_add(1);
      }
    });
  for (std::thread &T : Clients)
    T.join();
  EXPECT_EQ(Failures.load(), 0u);
  D.requestStop();
  D.wait();
}
