//===- tests/RandomProgramGen.h - Shared random-program generators -*- C++ -*-//
//
// Seeded generators of random probabilistic Boolean programs, shared by the
// differential-testing suites (tests/RandomProgramTest.cpp cross-checks
// analysis implementations against baselines; tests/DifferentialBiTest.cpp
// cross-checks the two BI representations across schedulers and thread
// counts). One definition keeps the program distributions identical on both
// sides — a fixture, not a library, so everything is header-inline.
//
// Two entry points:
//  * randomBoolProgram(R, NumVars, NumStmts) — the legacy shape: a single
//    `main`, no calls, no nondeterminism. Byte-for-byte the generator the
//    baseline differential tests have always used (same Rng consumption
//    sequence, so existing seeds reproduce the exact same programs).
//  * randomBoolProgram(R, BoolGenConfig) — the configurable shape: weighted
//    statement kinds (assignment, sampling, observation, conditional and
//    probabilistic branching, probabilistic loops, demonic choice, calls)
//    and optional helper procedures with guarded self-recursion, so suites
//    can dial up call-heavy, prob-heavy, or ndet-heavy workloads.
//
//===----------------------------------------------------------------------===//

#ifndef PMAF_TESTS_RANDOMPROGRAMGEN_H
#define PMAF_TESTS_RANDOMPROGRAMGEN_H

#include "lang/Ast.h"
#include "support/Rng.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace pmaf {
namespace testgen {

inline Rational randomProb(Rng &R, unsigned DenBound = 16) {
  int64_t Den = 1 + static_cast<int64_t>(R.below(DenBound));
  int64_t Num = static_cast<int64_t>(R.below(Den + 1));
  return Rational(Num, Den);
}

inline lang::Cond::Ptr randomBoolCond(Rng &R, unsigned NumVars,
                                      unsigned Depth) {
  using lang::Cond;
  if (Depth == 0 || R.below(2) == 0)
    return Cond::makeBoolVar(static_cast<unsigned>(R.below(NumVars)));
  switch (R.below(3)) {
  case 0:
    return Cond::makeNot(randomBoolCond(R, NumVars, Depth - 1));
  case 1:
    return Cond::makeAnd(randomBoolCond(R, NumVars, Depth - 1),
                         randomBoolCond(R, NumVars, Depth - 1));
  default:
    return Cond::makeOr(randomBoolCond(R, NumVars, Depth - 1),
                        randomBoolCond(R, NumVars, Depth - 1));
  }
}

//===----------------------------------------------------------------------===//
// Legacy shape (single main, no ndet, no calls)
//===----------------------------------------------------------------------===//

inline lang::Stmt::Ptr randomBoolStmt(Rng &R, unsigned NumVars,
                                      unsigned Depth) {
  using namespace lang;
  unsigned Kind = static_cast<unsigned>(R.below(Depth == 0 ? 3 : 6));
  unsigned Var = static_cast<unsigned>(R.below(NumVars));
  switch (Kind) {
  case 0:
    return Stmt::makeAssign(Var, Expr::makeBool(R.below(2) == 0));
  case 1: {
    Dist D;
    D.TheKind = Dist::Kind::Bernoulli;
    D.Params.push_back(Expr::makeNumber(randomProb(R)));
    return Stmt::makeSample(Var, std::move(D));
  }
  case 2:
    return Stmt::makeAssign(Var,
                            Expr::makeVar(static_cast<unsigned>(
                                R.below(NumVars))));
  case 3: {
    // observe on a disjunction-heavy condition (avoid rejecting all mass
    // too often).
    return Stmt::makeObserve(
        Cond::makeOr(randomBoolCond(R, NumVars, 1),
                     Cond::makeBoolVar(static_cast<unsigned>(
                         R.below(NumVars)))));
  }
  case 4: {
    Guard G;
    if (R.below(2) == 0) {
      G.TheKind = Guard::Kind::Cond;
      G.Phi = randomBoolCond(R, NumVars, 2);
    } else {
      G.TheKind = Guard::Kind::Prob;
      G.Prob = randomProb(R);
    }
    std::vector<Stmt::Ptr> Then, Else;
    Then.push_back(randomBoolStmt(R, NumVars, Depth - 1));
    Else.push_back(randomBoolStmt(R, NumVars, Depth - 1));
    return Stmt::makeIf(std::move(G), Stmt::makeBlock(std::move(Then)),
                        Stmt::makeBlock(std::move(Else)));
  }
  default: {
    // Probabilistically terminating loop (guard probability <= 3/4).
    Guard G;
    G.TheKind = Guard::Kind::Prob;
    G.Prob = Rational(static_cast<int64_t>(R.below(4)), 4);
    std::vector<Stmt::Ptr> Body;
    Body.push_back(randomBoolStmt(R, NumVars, Depth - 1));
    return Stmt::makeWhile(std::move(G), Stmt::makeBlock(std::move(Body)));
  }
  }
}

inline std::unique_ptr<lang::Program>
randomBoolProgram(Rng &R, unsigned NumVars, unsigned NumStmts) {
  using namespace lang;
  auto Prog = std::make_unique<Program>();
  for (unsigned I = 0; I != NumVars; ++I)
    Prog->Vars.push_back(VarInfo{"b" + std::to_string(I), false, {}});
  std::vector<Stmt::Ptr> Stmts;
  for (unsigned I = 0; I != NumStmts; ++I)
    Stmts.push_back(randomBoolStmt(R, NumVars, 2));
  Prog->Procs.push_back(
      Procedure{"main", Stmt::makeBlock(std::move(Stmts)), {}});
  return Prog;
}

//===----------------------------------------------------------------------===//
// Configurable shape (weighted statement kinds, helper procedures)
//===----------------------------------------------------------------------===//

/// Knobs of the configurable generator. Weights are relative frequencies
/// of the statement kinds (a zero weight removes the kind); presets below
/// cover the workload mixes the differential BI harness sweeps.
struct BoolGenConfig {
  unsigned NumVars = 3;
  unsigned NumStmts = 4;
  /// Nesting budget for branches and loops (leaf kinds only at 0).
  unsigned Depth = 2;
  /// Helper procedures besides main. Helper i may call helpers j > i
  /// unconditionally (a DAG) and itself behind a probability-guarded
  /// branch, so call-heavy programs stay convergent without widening.
  unsigned HelperProcs = 0;

  unsigned AssignWeight = 2;
  unsigned SampleWeight = 2;
  unsigned ObserveWeight = 1;
  unsigned IfWeight = 2;
  unsigned LoopWeight = 1;
  /// Demonic (ndet-guarded) branches.
  unsigned NdetWeight = 0;
  /// Plain calls into the callable-procedure pool (ignored when the pool
  /// is empty, i.e. for HelperProcs == 0 or the last helper).
  unsigned CallWeight = 0;

  /// Workload presets for suite sweeps.
  static BoolGenConfig probHeavy() {
    BoolGenConfig C;
    C.SampleWeight = 4;
    C.IfWeight = 3;
    C.LoopWeight = 2;
    return C;
  }
  static BoolGenConfig ndetHeavy() {
    BoolGenConfig C;
    C.NdetWeight = 3;
    C.IfWeight = 1;
    return C;
  }
  static BoolGenConfig callHeavy() {
    BoolGenConfig C;
    C.HelperProcs = 3;
    C.CallWeight = 3;
    C.NumStmts = 3;
    return C;
  }
  static BoolGenConfig mixed() {
    BoolGenConfig C;
    C.HelperProcs = 2;
    C.CallWeight = 2;
    C.NdetWeight = 1;
    return C;
  }
};

namespace detail {

/// A callable procedure: its AST index plus its name. Callee indices are
/// normally resolved by the parser's Sema; programmatically built calls
/// set them directly.
struct CalleeInfo {
  unsigned Index;
  std::string Name;
};

inline lang::Stmt::Ptr makeResolvedCall(const CalleeInfo &Callee) {
  lang::Stmt::Ptr Call = lang::Stmt::makeCall(Callee.Name);
  Call->setCalleeIndex(Callee.Index);
  return Call;
}

inline lang::Stmt::Ptr
randomConfiguredStmt(Rng &R, const BoolGenConfig &C,
                     unsigned Depth,
                     const std::vector<CalleeInfo> &Callees) {
  using namespace lang;
  const unsigned CallW = Callees.empty() ? 0 : C.CallWeight;
  // Nested kinds and calls only while the budget lasts (a call is a leaf
  // syntactically but recurses semantically; keeping it off the Depth == 0
  // tier caps the call density the same way it caps nesting).
  const bool Leaf = Depth == 0;
  const unsigned Total = C.AssignWeight + C.SampleWeight + C.ObserveWeight +
                         (Leaf ? 0
                               : C.IfWeight + C.LoopWeight + C.NdetWeight +
                                     CallW);
  unsigned Pick =
      static_cast<unsigned>(R.below(Total ? Total : 1));
  auto Take = [&Pick](unsigned Weight) {
    if (Pick < Weight)
      return true;
    Pick -= Weight;
    return false;
  };
  unsigned Var = static_cast<unsigned>(R.below(C.NumVars));

  if (Take(C.AssignWeight)) {
    if (R.below(2) == 0)
      return Stmt::makeAssign(Var, Expr::makeBool(R.below(2) == 0));
    return Stmt::makeAssign(
        Var, Expr::makeVar(static_cast<unsigned>(R.below(C.NumVars))));
  }
  if (Take(C.SampleWeight)) {
    Dist D;
    D.TheKind = Dist::Kind::Bernoulli;
    D.Params.push_back(Expr::makeNumber(randomProb(R)));
    return Stmt::makeSample(Var, std::move(D));
  }
  if (Take(C.ObserveWeight))
    return Stmt::makeObserve(
        Cond::makeOr(randomBoolCond(R, C.NumVars, 1),
                     Cond::makeBoolVar(static_cast<unsigned>(
                         R.below(C.NumVars)))));
  if (!Leaf && Take(C.IfWeight)) {
    Guard G;
    if (R.below(2) == 0) {
      G.TheKind = Guard::Kind::Cond;
      G.Phi = randomBoolCond(R, C.NumVars, 2);
    } else {
      G.TheKind = Guard::Kind::Prob;
      G.Prob = randomProb(R);
    }
    std::vector<Stmt::Ptr> Then, Else;
    Then.push_back(randomConfiguredStmt(R, C, Depth - 1, Callees));
    Else.push_back(randomConfiguredStmt(R, C, Depth - 1, Callees));
    return Stmt::makeIf(std::move(G), Stmt::makeBlock(std::move(Then)),
                        Stmt::makeBlock(std::move(Else)));
  }
  if (!Leaf && Take(C.LoopWeight)) {
    Guard G;
    G.TheKind = Guard::Kind::Prob;
    G.Prob = Rational(static_cast<int64_t>(R.below(4)), 4); // <= 3/4
    std::vector<Stmt::Ptr> Body;
    Body.push_back(randomConfiguredStmt(R, C, Depth - 1, Callees));
    return Stmt::makeWhile(std::move(G), Stmt::makeBlock(std::move(Body)));
  }
  if (!Leaf && Take(C.NdetWeight)) {
    Guard G;
    G.TheKind = Guard::Kind::Ndet;
    std::vector<Stmt::Ptr> Then, Else;
    Then.push_back(randomConfiguredStmt(R, C, Depth - 1, Callees));
    Else.push_back(randomConfiguredStmt(R, C, Depth - 1, Callees));
    return Stmt::makeIf(std::move(G), Stmt::makeBlock(std::move(Then)),
                        Stmt::makeBlock(std::move(Else)));
  }
  if (!Leaf && CallW != 0)
    return makeResolvedCall(
        Callees[static_cast<size_t>(R.below(Callees.size()))]);
  // Weight rounding fell through (e.g. every weight zero): default to a
  // constant assignment so the generator always produces a statement.
  return Stmt::makeAssign(Var, Expr::makeBool(true));
}

} // namespace detail

/// Generates a whole program under \p C: `main` (procedure 0, preserving
/// the proc(0)-is-the-entry convention) followed by `HelperProcs` helpers
/// h1..hN. The plain-call graph is a DAG (main calls any helper, helper i
/// calls only helpers j > i) plus probability-guarded self-recursion, so
/// fixpoints exist and chaotic iteration converges without widening — the
/// regime the BI domains are exercised in.
inline std::unique_ptr<lang::Program>
randomBoolProgram(Rng &R, const BoolGenConfig &C) {
  using namespace lang;
  auto Prog = std::make_unique<Program>();
  for (unsigned I = 0; I != C.NumVars; ++I)
    Prog->Vars.push_back(VarInfo{"b" + std::to_string(I), false, {}});

  // Procedure indices are fixed up front: main = 0, helper H = H + 1.
  std::vector<detail::CalleeInfo> Helpers;
  for (unsigned H = 0; H != C.HelperProcs; ++H)
    Helpers.push_back({H + 1, "h" + std::to_string(H + 1)});

  std::vector<Stmt::Ptr> MainBody;
  for (unsigned I = 0; I != C.NumStmts; ++I)
    MainBody.push_back(
        detail::randomConfiguredStmt(R, C, C.Depth, Helpers));
  Prog->Procs.push_back(
      Procedure{"main", Stmt::makeBlock(std::move(MainBody)), {}});

  for (unsigned H = 0; H != C.HelperProcs; ++H) {
    // Callable pool: strictly later helpers (keeps the plain-call graph
    // acyclic whatever the weights).
    std::vector<detail::CalleeInfo> Callees(Helpers.begin() + H + 1,
                                            Helpers.end());
    std::vector<Stmt::Ptr> Body;
    for (unsigned I = 0; I != C.NumStmts; ++I)
      Body.push_back(
          detail::randomConfiguredStmt(R, C, C.Depth, Callees));
    if (C.CallWeight != 0 && R.below(2) == 0) {
      // Guarded self-recursion: recurse with probability <= 1/2, so the
      // recursive summary is a geometric series that converges from
      // bottom.
      Guard G;
      G.TheKind = Guard::Kind::Prob;
      G.Prob = Rational(1 + static_cast<int64_t>(R.below(2)), 4);
      std::vector<Stmt::Ptr> Then, Else;
      Then.push_back(detail::makeResolvedCall(Helpers[H]));
      Else.push_back(Stmt::makeSkip());
      Body.push_back(Stmt::makeIf(std::move(G),
                                  Stmt::makeBlock(std::move(Then)),
                                  Stmt::makeBlock(std::move(Else))));
    }
    Prog->Procs.push_back(
        Procedure{Helpers[H].Name, Stmt::makeBlock(std::move(Body)), {}});
  }
  return Prog;
}

//===----------------------------------------------------------------------===//
// Real-valued programs (the LEIA workload)
//===----------------------------------------------------------------------===//

/// A random affine assignment / branch / loop statement over real-valued
/// nonnegative variables — the statement fragment the LEIA domain of §5.3
/// interprets exactly. Coefficients and constants are kept nonnegative so
/// programs stay inside the paper's positive-variable regime.
inline lang::Stmt::Ptr randomRealStmt(Rng &R, unsigned NumVars,
                                      unsigned Depth) {
  using namespace lang;
  unsigned Kind = static_cast<unsigned>(R.below(Depth == 0 ? 6 : 10));
  unsigned Var = static_cast<unsigned>(R.below(NumVars));
  unsigned Other = static_cast<unsigned>(R.below(NumVars));
  switch (Kind) {
  case 0: // x := c
    return Stmt::makeAssign(
        Var, Expr::makeNumber(Rational(static_cast<int64_t>(R.below(5)))));
  case 1: // x := y
    return Stmt::makeAssign(Var, Expr::makeVar(Other));
  case 2: // x := y + c
    return Stmt::makeAssign(
        Var, Expr::makeBinary(
                 Expr::Kind::Add, Expr::makeVar(Other),
                 Expr::makeNumber(
                     Rational(static_cast<int64_t>(1 + R.below(3))))));
  case 3: // x := q * y (a contraction, so prob loops converge)
    return Stmt::makeAssign(
        Var, Expr::makeBinary(Expr::Kind::Mul,
                              Expr::makeNumber(randomProb(R)),
                              Expr::makeVar(Other)));
  case 4: // x := y + z
    return Stmt::makeAssign(
        Var, Expr::makeBinary(
                 Expr::Kind::Add, Expr::makeVar(Other),
                 Expr::makeVar(static_cast<unsigned>(R.below(NumVars)))));
  case 5: { // x ~ bernoulli(p)
    Dist D;
    D.TheKind = Dist::Kind::Bernoulli;
    D.Params.push_back(Expr::makeNumber(randomProb(R)));
    return Stmt::makeSample(Var, std::move(D));
  }
  case 6: case 7: { // two-way branch: prob / comparison / demonic guard
    Guard G;
    switch (R.below(3)) {
    case 0:
      G.TheKind = Guard::Kind::Prob;
      G.Prob = randomProb(R);
      break;
    case 1:
      G.TheKind = Guard::Kind::Cond;
      G.Phi = Cond::makeCmp(
          R.below(2) == 0 ? CmpOp::Le : CmpOp::Ge, Expr::makeVar(Var),
          Expr::makeNumber(Rational(static_cast<int64_t>(R.below(6)))));
      break;
    default:
      G.TheKind = Guard::Kind::Ndet;
      break;
    }
    std::vector<Stmt::Ptr> Then, Else;
    Then.push_back(randomRealStmt(R, NumVars, Depth - 1));
    Else.push_back(randomRealStmt(R, NumVars, Depth - 1));
    return Stmt::makeIf(std::move(G), Stmt::makeBlock(std::move(Then)),
                        Stmt::makeBlock(std::move(Else)));
  }
  case 8: { // probabilistically terminating loop (guard <= 3/4)
    Guard G;
    G.TheKind = Guard::Kind::Prob;
    G.Prob = Rational(static_cast<int64_t>(R.below(4)), 4);
    std::vector<Stmt::Ptr> Body;
    Body.push_back(randomRealStmt(R, NumVars, Depth - 1));
    return Stmt::makeWhile(std::move(G), Stmt::makeBlock(std::move(Body)));
  }
  default: { // bounded counting loop: while (x <= c) { x := x + 1; S }
    Guard G;
    G.TheKind = Guard::Kind::Cond;
    G.Phi = Cond::makeCmp(
        CmpOp::Le, Expr::makeVar(Var),
        Expr::makeNumber(Rational(static_cast<int64_t>(1 + R.below(4)))));
    std::vector<Stmt::Ptr> Body;
    Body.push_back(Stmt::makeAssign(
        Var, Expr::makeBinary(Expr::Kind::Add, Expr::makeVar(Var),
                              Expr::makeNumber(Rational(1)))));
    Body.push_back(randomRealStmt(R, NumVars, Depth - 1));
    return Stmt::makeWhile(std::move(G), Stmt::makeBlock(std::move(Body)));
  }
  }
}

/// A random real-valued single-procedure program in the LEIA fragment:
/// affine assignments, Bernoulli sampling, probabilistic / conditional /
/// demonic branching, and both probabilistically-terminating and bounded
/// counting loops (the latter exercise widening).
inline std::unique_ptr<lang::Program>
randomRealProgram(Rng &R, unsigned NumVars, unsigned NumStmts,
                  unsigned Depth = 2) {
  using namespace lang;
  auto Prog = std::make_unique<Program>();
  for (unsigned I = 0; I != NumVars; ++I)
    Prog->Vars.push_back(VarInfo{"x" + std::to_string(I), true, {}});
  std::vector<Stmt::Ptr> Stmts;
  for (unsigned I = 0; I != NumStmts; ++I)
    Stmts.push_back(randomRealStmt(R, NumVars, Depth));
  Prog->Procs.push_back(
      Procedure{"main", Stmt::makeBlock(std::move(Stmts)), {}});
  return Prog;
}

} // namespace testgen
} // namespace pmaf

#endif // PMAF_TESTS_RANDOMPROGRAMGEN_H
