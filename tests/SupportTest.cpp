//===- tests/SupportTest.cpp - BigInt and Rational unit tests -------------===//

#include "support/BigInt.h"
#include "support/Diagnostics.h"
#include "support/Rational.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace pmaf;

//===----------------------------------------------------------------------===//
// BigInt
//===----------------------------------------------------------------------===//

TEST(BigIntTest, ZeroBasics) {
  BigInt Zero;
  EXPECT_TRUE(Zero.isZero());
  EXPECT_EQ(Zero.sign(), 0);
  EXPECT_EQ(Zero.toString(), "0");
  EXPECT_TRUE(Zero.isEven());
  EXPECT_EQ(Zero.bitLength(), 0u);
  EXPECT_EQ((Zero + Zero).toString(), "0");
  EXPECT_EQ((Zero * BigInt(12345)).toString(), "0");
}

TEST(BigIntTest, Int64RoundTrip) {
  for (int64_t V : {int64_t(0), int64_t(1), int64_t(-1), int64_t(42),
                    int64_t(-987654321), INT64_MAX, INT64_MIN}) {
    BigInt B(V);
    ASSERT_TRUE(B.fitsInt64());
    EXPECT_EQ(B.toInt64(), V);
  }
}

TEST(BigIntTest, StringRoundTrip) {
  const char *Cases[] = {"0", "1", "-1", "4294967296", "-4294967297",
                         "123456789012345678901234567890",
                         "-99999999999999999999999999999999999999"};
  for (const char *Text : Cases)
    EXPECT_EQ(BigInt::fromString(Text).toString(), Text);
}

TEST(BigIntTest, AdditionCarries) {
  BigInt A = BigInt::fromString("4294967295"); // 2^32 - 1
  EXPECT_EQ((A + BigInt(1)).toString(), "4294967296");
  EXPECT_EQ((A + A).toString(), "8589934590");
}

TEST(BigIntTest, SubtractionSigns) {
  EXPECT_EQ((BigInt(5) - BigInt(7)).toString(), "-2");
  EXPECT_EQ((BigInt(-5) - BigInt(-7)).toString(), "2");
  EXPECT_EQ((BigInt(7) - BigInt(7)).toString(), "0");
  BigInt Big = BigInt::fromString("100000000000000000000");
  EXPECT_EQ((Big - Big).sign(), 0);
  EXPECT_EQ((Big - BigInt(1)).toString(), "99999999999999999999");
}

TEST(BigIntTest, MultiplicationLarge) {
  BigInt A = BigInt::fromString("123456789123456789");
  BigInt B = BigInt::fromString("987654321987654321");
  EXPECT_EQ((A * B).toString(), "121932631356500531347203169112635269");
  EXPECT_EQ((A * BigInt(-1)).toString(), "-123456789123456789");
}

TEST(BigIntTest, CompareOrdering) {
  EXPECT_LT(BigInt(-10), BigInt(-2));
  EXPECT_LT(BigInt(-2), BigInt(0));
  EXPECT_LT(BigInt(0), BigInt(3));
  EXPECT_LT(BigInt(3), BigInt::fromString("10000000000000000000"));
  EXPECT_LT(BigInt::fromString("-10000000000000000000"), BigInt(-3));
}

TEST(BigIntTest, Shifts) {
  BigInt One(1);
  EXPECT_EQ(One.shiftLeft(100).toString(), "1267650600228229401496703205376");
  EXPECT_EQ(One.shiftLeft(100).shiftRight(100).toInt64(), 1);
  EXPECT_EQ(BigInt(12345).shiftRight(64).sign(), 0);
  EXPECT_EQ(BigInt(6).shiftRight(1).toInt64(), 3);
  EXPECT_EQ(BigInt(-6).shiftRight(1).toInt64(), -3);
}

TEST(BigIntTest, DivmodTruncates) {
  BigInt Q, R;
  BigInt(7).divmod(BigInt(2), Q, R);
  EXPECT_EQ(Q.toInt64(), 3);
  EXPECT_EQ(R.toInt64(), 1);
  BigInt(-7).divmod(BigInt(2), Q, R);
  EXPECT_EQ(Q.toInt64(), -3);
  EXPECT_EQ(R.toInt64(), -1);
  BigInt(7).divmod(BigInt(-2), Q, R);
  EXPECT_EQ(Q.toInt64(), -3);
  EXPECT_EQ(R.toInt64(), 1);
}

TEST(BigIntTest, DivmodLargeReconstructs) {
  Rng R(7);
  for (int I = 0; I != 200; ++I) {
    int64_t A = static_cast<int64_t>(R.next()) / 3;
    int64_t B = static_cast<int64_t>(R.next() % 1000000) - 500000;
    if (B == 0)
      B = 17;
    BigInt Quotient, Remainder;
    BigInt(A).divmod(BigInt(B), Quotient, Remainder);
    EXPECT_EQ(Quotient.toInt64(), A / B) << A << " / " << B;
    EXPECT_EQ(Remainder.toInt64(), A % B) << A << " % " << B;
  }
}

TEST(BigIntTest, DivExact) {
  BigInt Product = BigInt::fromString("123456789123456789") * BigInt(12347);
  EXPECT_EQ(Product.divExact(BigInt(12347)).toString(),
            "123456789123456789");
}

TEST(BigIntTest, GcdLcm) {
  EXPECT_EQ(BigInt::gcd(BigInt(12), BigInt(18)).toInt64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt(-12), BigInt(18)).toInt64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)).toInt64(), 5);
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(0)).toInt64(), 0);
  EXPECT_EQ(BigInt::gcd(BigInt(17), BigInt(13)).toInt64(), 1);
  EXPECT_EQ(BigInt::lcm(BigInt(4), BigInt(6)).toInt64(), 12);
  EXPECT_EQ(BigInt::lcm(BigInt(0), BigInt(6)).toInt64(), 0);
  // gcd of large coprime-by-construction values.
  BigInt A = BigInt::fromString("1000000007") * BigInt::fromString("998244353");
  EXPECT_EQ(BigInt::gcd(A, BigInt::fromString("1000000007")).toString(),
            "1000000007");
}

TEST(BigIntTest, PropertyRandomArithmetic) {
  // (a + b) - b == a and (a * b) / b == a for random 128-bit-ish values.
  Rng R(42);
  for (int I = 0; I != 100; ++I) {
    BigInt A = BigInt(static_cast<int64_t>(R.next())) *
               BigInt(static_cast<int64_t>(R.next() % 1000003));
    BigInt B = BigInt(static_cast<int64_t>(R.next())) + BigInt(1);
    if (B.isZero())
      continue;
    EXPECT_EQ(((A + B) - B).compare(A), 0);
    EXPECT_EQ(((A * B).divExact(B)).compare(A), 0);
    BigInt Q, Rem;
    A.divmod(B, Q, Rem);
    EXPECT_EQ((Q * B + Rem).compare(A), 0);
    EXPECT_LT(Rem.abs().compare(B.abs()), 0);
  }
}

//===----------------------------------------------------------------------===//
// Rational
//===----------------------------------------------------------------------===//

TEST(RationalTest, NormalizesOnConstruction) {
  Rational Half(2, 4);
  EXPECT_EQ(Half.numerator().toInt64(), 1);
  EXPECT_EQ(Half.denominator().toInt64(), 2);
  Rational NegHalf(1, -2);
  EXPECT_EQ(NegHalf.numerator().toInt64(), -1);
  EXPECT_EQ(NegHalf.denominator().toInt64(), 2);
  Rational Zero(0, 7);
  EXPECT_TRUE(Zero.isZero());
  EXPECT_EQ(Zero.denominator().toInt64(), 1);
}

TEST(RationalTest, Arithmetic) {
  Rational A(1, 3), B(1, 6);
  EXPECT_EQ((A + B).toString(), "1/2");
  EXPECT_EQ((A - B).toString(), "1/6");
  EXPECT_EQ((A * B).toString(), "1/18");
  EXPECT_EQ((A / B).toString(), "2");
  EXPECT_EQ((-A).toString(), "-1/3");
}

TEST(RationalTest, Comparison) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(7, 2), Rational(3));
}

TEST(RationalTest, FromStringForms) {
  EXPECT_EQ(Rational::fromString("123").toString(), "123");
  EXPECT_EQ(Rational::fromString("-4/6").toString(), "-2/3");
  EXPECT_EQ(Rational::fromString("0.75").toString(), "3/4");
  EXPECT_EQ(Rational::fromString("-1.25").toString(), "-5/4");
  EXPECT_EQ(Rational::fromString("1e3").toString(), "1000");
  EXPECT_EQ(Rational::fromString("2.5e-2").toString(), "1/40");
  EXPECT_EQ(Rational::fromString("0.3486784401").toString(),
            "3486784401/10000000000");
}

TEST(RationalTest, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(3, 4).toDouble(), 0.75);
  EXPECT_DOUBLE_EQ(Rational(-1, 3).toDouble(), -1.0 / 3.0);
}

TEST(RationalTest, PropertyFieldAxioms) {
  Rng R(99);
  for (int I = 0; I != 100; ++I) {
    auto Rand = [&R]() {
      int64_t N = static_cast<int64_t>(R.next() % 2001) - 1000;
      int64_t D = static_cast<int64_t>(R.next() % 1000) + 1;
      return Rational(N, D);
    };
    Rational A = Rand(), B = Rand(), C = Rand();
    EXPECT_EQ(A + B, B + A);
    EXPECT_EQ((A + B) + C, A + (B + C));
    EXPECT_EQ(A * (B + C), A * B + A * C);
    EXPECT_EQ(A - A, Rational(0));
    if (!B.isZero()) {
      EXPECT_EQ((A / B) * B, A);
    }
  }
}

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(RngTest, DeterministicAndInRange) {
  Rng A(123), B(123);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
  Rng C(7);
  for (int I = 0; I != 1000; ++I) {
    double U = C.uniform();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

TEST(RngTest, UniformMeanRoughlyHalf) {
  Rng R(5);
  double Sum = 0.0;
  const int N = 20000;
  for (int I = 0; I != N; ++I)
    Sum += R.uniform();
  EXPECT_NEAR(Sum / N, 0.5, 0.02);
}

//===----------------------------------------------------------------------===//
// DiagnosticEngine
//===----------------------------------------------------------------------===//

TEST(DiagnosticsTest, CaretRendering) {
  DiagnosticEngine Diags;
  Diags.setSource("demo.pp", "real x;\nproc main() {\n  x := 1;\n}\n");
  Diags.report(Severity::Error, {3, 8}, "demo-code", "something is off");
  EXPECT_EQ(Diags.renderAll(),
            "demo.pp:3:8: error: something is off [demo-code]\n"
            "    x := 1;\n"
            "         ^\n"
            "1 error, 0 warnings\n");
}

TEST(DiagnosticsTest, TabsPreservedInCaretPadding) {
  DiagnosticEngine Diags;
  Diags.setSource("t.pp", "\tx := 1;\n");
  std::string Out =
      Diags.render(Diags.report(Severity::Warning, {1, 2}, "c", "m"));
  EXPECT_NE(Out.find("\n  \t^\n"), std::string::npos) << Out;
}

TEST(DiagnosticsTest, UnknownLocationSkipsExcerpt) {
  DiagnosticEngine Diags;
  Diags.setSource("u.pp", "real x;\n");
  std::string Out =
      Diags.render(Diags.report(Severity::Error, {}, "c", "boom"));
  EXPECT_EQ(Out, "u.pp: error: boom [c]\n");
}

TEST(DiagnosticsTest, WarningsAsErrorsPromotes) {
  DiagnosticEngine Diags;
  Diags.setWarningsAsErrors(true);
  Diags.report(Severity::Warning, {1, 1}, "w", "warned");
  EXPECT_EQ(Diags.errorCount(), 1u);
  EXPECT_EQ(Diags.warningCount(), 0u);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(DiagnosticsTest, NotesRenderAfterParent) {
  DiagnosticEngine Diags;
  Diags.setSource("n.pp", "real x;\nreal x;\n");
  Diagnostic &D =
      Diags.report(Severity::Error, {2, 6}, "redeclared-variable",
                   "redeclaration of 'x'");
  D.addNote({1, 6}, "previous declaration is here");
  std::string Out = Diags.render(D);
  EXPECT_NE(Out.find("n.pp:2:6: error:"), std::string::npos) << Out;
  EXPECT_NE(Out.find("n.pp:1:6: note: previous declaration is here"),
            std::string::npos)
      << Out;
}

TEST(DiagnosticsTest, SortByLocationIsStable) {
  DiagnosticEngine Diags;
  Diags.report(Severity::Error, {3, 1}, "b", "late");
  Diags.report(Severity::Error, {1, 2}, "a", "early");
  Diags.report(Severity::Error, {3, 1}, "c", "late too");
  Diags.sortByLocation();
  EXPECT_EQ(Diags.diagnostics()[0].Code, "a");
  EXPECT_EQ(Diags.diagnostics()[1].Code, "b");
  EXPECT_EQ(Diags.diagnostics()[2].Code, "c");
}

TEST(DiagnosticsTest, JsonEscapesAndCounts) {
  DiagnosticEngine Diags;
  Diags.setSource("j\"s.pp", "x\n");
  Diags.report(Severity::Warning, {1, 1}, "quote", "say \"hi\"\n");
  std::string Json = Diags.renderJson();
  EXPECT_NE(Json.find("\"file\": \"j\\\"s.pp\""), std::string::npos)
      << Json;
  EXPECT_NE(Json.find("say \\\"hi\\\"\\n"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"errors\": 0"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"warnings\": 1"), std::string::npos) << Json;
}
