//===- tests/ConcreteTest.cpp - Monte-Carlo interpreter tests -------------===//
//
// Every interpreter is seeded through Interpreter::seedFromEnv, so setting
// PMAF_SEED=<n> replays a sampling experiment (e.g. a soundness-fuzz
// failure) under a chosen seed without recompiling.
//
//===----------------------------------------------------------------------===//

#include "concrete/Interpreter.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace pmaf;
using namespace pmaf::concrete;

TEST(InterpreterTest, DeterministicArithmetic) {
  auto Prog = lang::parseProgramOrDie(R"(
    real x, y;
    proc main() { x := 3; y := (x + 1) * 2 - 1; x := y / 7; }
  )");
  Interpreter Interp(*Prog, Interpreter::seedFromEnv(1));
  auto R = Interp.run(0, {});
  ASSERT_TRUE(R.terminated());
  EXPECT_DOUBLE_EQ(R.State[1], 7.0);
  EXPECT_DOUBLE_EQ(R.State[0], 1.0);
}

TEST(InterpreterTest, ConditionalsAndLoops) {
  auto Prog = lang::parseProgramOrDie(R"(
    real i, sum;
    proc main() {
      i := 0; sum := 0;
      while (i < 10) { sum := sum + i; i := i + 1; }
      if (sum == 45) { sum := 1; } else { sum := 0; }
    }
  )");
  Interpreter Interp(*Prog, Interpreter::seedFromEnv(1));
  auto R = Interp.run(0, {});
  ASSERT_TRUE(R.terminated());
  EXPECT_DOUBLE_EQ(R.State[1], 1.0);
}

TEST(InterpreterTest, BreakContinueReturn) {
  auto Prog = lang::parseProgramOrDie(R"(
    real i, hits;
    proc main() {
      i := 0; hits := 0;
      while (true) {
        i := i + 1;
        if (i >= 10) { break; }
        if (i >= 5) { continue; }
        hits := hits + 1;
      }
      return;
      hits := 99;
    }
  )");
  Interpreter Interp(*Prog, Interpreter::seedFromEnv(1));
  auto R = Interp.run(0, {});
  ASSERT_TRUE(R.terminated());
  EXPECT_DOUBLE_EQ(R.State[0], 10.0);
  EXPECT_DOUBLE_EQ(R.State[1], 4.0);
}

TEST(InterpreterTest, CallsShareGlobalState) {
  auto Prog = lang::parseProgramOrDie(R"(
    real x;
    proc bump() { x := x + 1; return; }
    proc main() { bump(); bump(); bump(); }
  )");
  Interpreter Interp(*Prog, Interpreter::seedFromEnv(1));
  auto R = Interp.run(Prog->findProc("main"), {});
  ASSERT_TRUE(R.terminated());
  EXPECT_DOUBLE_EQ(R.State[0], 3.0);
}

TEST(InterpreterTest, ReturnInsideCalleeDoesNotExitCaller) {
  auto Prog = lang::parseProgramOrDie(R"(
    real x;
    proc early() { return; x := 100; }
    proc main() { early(); x := x + 1; }
  )");
  Interpreter Interp(*Prog, Interpreter::seedFromEnv(1));
  auto R = Interp.run(Prog->findProc("main"), {});
  ASSERT_TRUE(R.terminated());
  EXPECT_DOUBLE_EQ(R.State[0], 1.0);
}

TEST(InterpreterTest, ObserveRejects) {
  auto Prog = lang::parseProgramOrDie(R"(
    bool b;
    proc main() { b ~ bernoulli(0.5); observe(b); }
  )");
  Interpreter Interp(*Prog, Interpreter::seedFromEnv(17));
  int Accepted = 0, Rejected = 0;
  for (int I = 0; I != 10000; ++I) {
    auto R = Interp.run(0, {});
    if (R.TheStatus == ExecResult::Status::ObserveFailed)
      ++Rejected;
    else if (R.terminated()) {
      ++Accepted;
      EXPECT_DOUBLE_EQ(R.State[0], 1.0);
    }
  }
  EXPECT_NEAR(double(Accepted) / (Accepted + Rejected), 0.5, 0.03);
}

TEST(InterpreterTest, OutOfFuelOnDivergence) {
  auto Prog = lang::parseProgramOrDie(R"(
    proc main() { while (true) { skip; } }
  )");
  Interpreter Interp(*Prog, Interpreter::seedFromEnv(1));
  auto R = Interp.run(0, {}, 1000);
  EXPECT_EQ(R.TheStatus, ExecResult::Status::OutOfFuel);
}

TEST(InterpreterTest, RewardAccumulates) {
  auto Prog = lang::parseProgramOrDie(R"(
    proc main() { reward(1); reward(2.5); }
  )");
  Interpreter Interp(*Prog, Interpreter::seedFromEnv(1));
  auto R = Interp.run(0, {});
  EXPECT_DOUBLE_EQ(R.Reward, 3.5);
}

TEST(InterpreterTest, UniformMoments) {
  auto Prog = lang::parseProgramOrDie(R"(
    real z;
    proc main() { z ~ uniform(0, 2); }
  )");
  Interpreter Interp(*Prog, Interpreter::seedFromEnv(33));
  double Sum = 0, Min = 1e9, Max = -1e9;
  const int N = 50000;
  for (int I = 0; I != N; ++I) {
    auto R = Interp.run(0, {});
    Sum += R.State[0];
    Min = std::min(Min, R.State[0]);
    Max = std::max(Max, R.State[0]);
  }
  EXPECT_NEAR(Sum / N, 1.0, 0.02);
  EXPECT_GE(Min, 0.0);
  EXPECT_LE(Max, 2.0);
}

TEST(InterpreterTest, GaussianMoments) {
  auto Prog = lang::parseProgramOrDie(R"(
    real g;
    proc main() { g ~ gaussian(5, 2); }
  )");
  Interpreter Interp(*Prog, Interpreter::seedFromEnv(7));
  double Sum = 0, SumSq = 0;
  const int N = 50000;
  for (int I = 0; I != N; ++I) {
    auto R = Interp.run(0, {});
    Sum += R.State[0];
    SumSq += R.State[0] * R.State[0];
  }
  double Mean = Sum / N;
  double Var = SumSq / N - Mean * Mean;
  EXPECT_NEAR(Mean, 5.0, 0.05);
  EXPECT_NEAR(Var, 4.0, 0.15);
}

TEST(InterpreterTest, DiscreteDie) {
  auto Prog = lang::parseProgramOrDie(R"(
    real d;
    proc main() { d ~ discrete(1: 1/6, 2: 1/6, 3: 1/6, 4: 1/6, 5: 1/6, 6: 1/6); }
  )");
  Interpreter Interp(*Prog, Interpreter::seedFromEnv(11));
  std::vector<int> Counts(7, 0);
  const int N = 60000;
  for (int I = 0; I != N; ++I) {
    auto R = Interp.run(0, {});
    ++Counts[static_cast<int>(R.State[0])];
  }
  for (int Face = 1; Face <= 6; ++Face)
    EXPECT_NEAR(double(Counts[Face]) / N, 1.0 / 6, 0.01) << "face " << Face;
}

TEST(InterpreterTest, NdetPolicyIsConsulted) {
  auto Prog = lang::parseProgramOrDie(R"(
    real x;
    proc main() { if star { x := 1; } else { x := 2; } }
  )");
  Interpreter Interp(*Prog, Interpreter::seedFromEnv(1));
  auto TakeThen = [](const std::vector<double> &) { return true; };
  auto TakeElse = [](const std::vector<double> &) { return false; };
  EXPECT_DOUBLE_EQ(Interp.run(0, {}, 1000, TakeThen).State[0], 1.0);
  EXPECT_DOUBLE_EQ(Interp.run(0, {}, 1000, TakeElse).State[0], 2.0);
}

TEST(InterpreterTest, Example34TruncatedGeometric) {
  // Ex 3.4 / Fig 6: P[n = k] = 0.1 * 0.9^k for k < 10 and
  // P[n = 10] = 0.9^10 = K = 0.3486784401.
  auto Prog = lang::parseProgramOrDie(R"(
    real n;
    proc main() {
      n := 0;
      while prob(0.9) {
        n := n + 1;
        if (n >= 10) { break; } else { continue; }
      }
    }
  )");
  Interpreter Interp(*Prog, Interpreter::seedFromEnv(314159));
  const int N = 400000;
  std::vector<double> Counts(11, 0.0);
  for (int I = 0; I != N; ++I) {
    auto R = Interp.run(0, {});
    ASSERT_TRUE(R.terminated());
    Counts[static_cast<int>(R.State[0])] += 1.0;
  }
  const double K = 0.3486784401;
  for (int V = 0; V != 10; ++V)
    EXPECT_NEAR(Counts[V] / N, 0.1 * std::pow(0.9, V), 0.005)
        << "n = " << V;
  EXPECT_NEAR(Counts[10] / N, K, 0.005);
}

TEST(InterpreterTest, Figure1bExpectedRewards) {
  // §2.2: E[x' + y'] = x + y + 3 under any scheduler; check the random
  // scheduler and both constant schedulers.
  auto Prog = lang::parseProgramOrDie(R"(
    real x, y, z;
    proc main() {
      while prob(3/4) {
        z ~ uniform(0, 2);
        if star { x := x + z; } else { y := y + z; }
      }
    }
  )");
  Interpreter Interp(*Prog, Interpreter::seedFromEnv(271828));
  const int N = 100000;
  for (int Mode = 0; Mode != 3; ++Mode) {
    NdetPolicy Policy = nullptr;
    if (Mode == 1)
      Policy = [](const std::vector<double> &) { return true; };
    if (Mode == 2)
      Policy = [](const std::vector<double> &) { return false; };
    double Sum = 0;
    for (int I = 0; I != N; ++I) {
      auto R = Interp.run(0, {1.0, 2.0, 0.0}, 100000, Policy);
      ASSERT_TRUE(R.terminated());
      Sum += R.State[0] + R.State[1];
    }
    EXPECT_NEAR(Sum / N, 1.0 + 2.0 + 3.0, 0.1) << "scheduler " << Mode;
  }
}

// PMAF_SEED used to be parsed with atoll-style leniency: "banana" silently
// became the fallback and "12abc" became 12, so replaying a fuzz failure
// with a typo'd seed reproduced nothing. These pin the strict behavior:
// malformed values warn with a stable code, and the effective seed is
// always echoed so any run can be replayed.
TEST(SeedFromEnvTest, AbsentVariableUsesFallbackSilently) {
  ::unsetenv("PMAF_SEED");
  ::testing::internal::CaptureStderr();
  uint64_t Seed = Interpreter::seedFromEnv(7);
  std::string Err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(Seed, 7u);
  EXPECT_TRUE(Err.empty()) << Err;
}

TEST(SeedFromEnvTest, WellFormedSeedOverridesFallback) {
  ::setenv("PMAF_SEED", "123456789", 1);
  ::testing::internal::CaptureStderr();
  uint64_t Seed = Interpreter::seedFromEnv(7);
  std::string Err = ::testing::internal::GetCapturedStderr();
  ::unsetenv("PMAF_SEED");
  EXPECT_EQ(Seed, 123456789u);
  EXPECT_NE(Err.find("seed = 123456789"), std::string::npos) << Err;
  EXPECT_EQ(Err.find("[invalid-env-seed]"), std::string::npos) << Err;
}

TEST(SeedFromEnvTest, MalformedSeedWarnsAndFallsBack) {
  for (const char *Bad : {"banana", "12abc", "-3", "1.5", ""}) {
    ::setenv("PMAF_SEED", Bad, 1);
    ::testing::internal::CaptureStderr();
    uint64_t Seed = Interpreter::seedFromEnv(42);
    std::string Err = ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(Seed, 42u) << "PMAF_SEED='" << Bad << "'";
    EXPECT_NE(Err.find("[invalid-env-seed]"), std::string::npos)
        << "PMAF_SEED='" << Bad << "': " << Err;
    EXPECT_NE(Err.find("seed = 42"), std::string::npos)
        << "PMAF_SEED='" << Bad << "': " << Err;
  }
  ::unsetenv("PMAF_SEED");
}
