//===- tests/MiscCoverageTest.cpp - Targeted edge-case coverage -----------===//
//
// Odds and ends: the LEIA condition translation (negation pushing,
// conjunction/disjunction handling, the closed over-approximations of
// strict and disequality atoms), parser robustness under garbage input,
// and Graphviz/WTO output smoke checks on multi-procedure programs.
//
//===----------------------------------------------------------------------===//

#include "cfg/HyperGraph.h"
#include "cfg/Wto.h"
#include "core/Solver.h"
#include "domains/LeiaDomain.h"
#include "lang/Lexer.h"
#include "lang/Parser.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace pmaf;
using namespace pmaf::core;
using namespace pmaf::domains;

//===----------------------------------------------------------------------===//
// LEIA condition translation: analyze `if (phi) { x := 1; } else { x := 2; }`
// and read the branch outcome off the expectation bounds at a concrete
// pre-state — phi held iff E[x'] == 1.
//===----------------------------------------------------------------------===//

namespace {

/// \returns the expectation interval of x' from pre-state (x, y) = (A, B)
/// for the program `if (Phi) { x := 1; } else { x := 2; }`.
std::pair<double, double> branchOutcome(const std::string &Phi, int64_t A,
                                        int64_t B) {
  std::string Source = "real x, y; proc main() { if (" + Phi +
                       ") { x := 1; } else { x := 2; } }";
  auto Prog = lang::parseProgramOrDie(Source);
  cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
  LeiaDomain Dom(*Prog);
  auto Result = solve(Graph, Dom);
  auto [Lo, Hi] = Dom.expectationBounds(
      Result.Values[Graph.proc(0).Entry], {Rational(1), Rational(0)},
      {Rational(A), Rational(B)});
  return {Lo ? Lo->toDouble() : -HUGE_VAL, Hi ? Hi->toDouble() : HUGE_VAL};
}

} // namespace

// The cond-choice result is a polyhedral *hull* of the two guarded
// branches (§5.3), so at a concrete pre-state the interval blends the
// branch values with mixtures feasible inside the hull; the tests pin the
// exact hull sections (computed by hand) and, everywhere, soundness:
// the true branch outcome lies inside [Lo, Hi] ⊆ [1, 2].

namespace {

/// Checks soundness at a pre-state: the interval contains the concrete
/// branch value and stays within the two branch constants.
void expectSound(std::pair<double, double> Bounds, double TrueValue) {
  auto [Lo, Hi] = Bounds;
  EXPECT_LE(Lo, TrueValue + 1e-9);
  EXPECT_GE(Hi, TrueValue - 1e-9);
  EXPECT_GE(Lo, 1.0 - 1e-9);
  EXPECT_LE(Hi, 2.0 + 1e-9);
}

} // namespace

TEST(CondTranslationTest, ComparisonHullSections) {
  // x <= 3 at x = 2: hull of {x<=3, x'=1} and {x>=3, x'=2} sliced at 2 is
  // exactly [1, 5/3] (mixtures lambda*(x_a<=3) + (1-lambda)*(x_b>=3)).
  auto [Lo1, Hi1] = branchOutcome("x <= 3", 2, 0);
  EXPECT_DOUBLE_EQ(Lo1, 1.0);
  EXPECT_NEAR(Hi1, 5.0 / 3.0, 1e-9);
  expectSound({Lo1, Hi1}, 1.0);
  // At x = 5 the slice is [1, 2] (the closure admits lambda -> 1).
  auto [Lo2, Hi2] = branchOutcome("x <= 3", 5, 0);
  EXPECT_DOUBLE_EQ(Lo2, 1.0);
  EXPECT_DOUBLE_EQ(Hi2, 2.0);
  expectSound({Lo2, Hi2}, 2.0);
}

TEST(CondTranslationTest, NegationPushesThroughConnectives) {
  // !(x <= 3 && y <= 3) = x > 3 || y > 3 (De Morgan): holds at (5, 0),
  // fails at (1, 1); both intervals must contain the respective branch.
  expectSound(branchOutcome("!(x <= 3 && y <= 3)", 5, 0), 1.0);
  expectSound(branchOutcome("!(x <= 3 && y <= 3)", 1, 1), 2.0);
}

TEST(CondTranslationTest, DisjunctionCoversBothSides) {
  expectSound(branchOutcome("x >= 10 || y >= 10", 0, 12), 1.0);
  expectSound(branchOutcome("x >= 10 || y >= 10", 0, 0), 2.0);
}

TEST(CondTranslationTest, EqualityAtomStaysSound) {
  // The == atom slices the then-part of the hull to the hyperplane
  // x == 4, but its negation is not convex (over-approximated to top),
  // so the else branch remains feasible everywhere: the interval is the
  // sound [1, 2] on the guard's own hyperplane too.
  expectSound(branchOutcome("x == 4", 4, 0), 1.0);
  expectSound(branchOutcome("x == 4", 3, 0), 2.0);
}

TEST(CondTranslationTest, DisequalityOverApproximates) {
  // != is not convex: the then-branch is unconstrained, so the interval
  // is the full [1, 2] at any pre-state — sound, maximally imprecise.
  auto [Lo, Hi] = branchOutcome("x != 4", 9, 0);
  EXPECT_DOUBLE_EQ(Lo, 1.0);
  EXPECT_DOUBLE_EQ(Hi, 2.0);
}

TEST(CondTranslationTest, StrictInequalityClosedApproximation) {
  // x < 4 at the boundary x = 4: the closed over-approximations x <= 4
  // and x >= 4 both admit the pre-state; both branches stay feasible.
  auto [Lo, Hi] = branchOutcome("x < 4", 4, 0);
  EXPECT_DOUBLE_EQ(Lo, 1.0);
  EXPECT_DOUBLE_EQ(Hi, 2.0);
  // Away from the boundary the branch value is still inside, and the
  // infeasible branch only enters through hull mixing.
  expectSound(branchOutcome("x < 4", 2, 0), 1.0);
  expectSound(branchOutcome("x < 4", 9, 0), 2.0);
}

//===----------------------------------------------------------------------===//
// Parser robustness
//===----------------------------------------------------------------------===//

TEST(ParserRobustnessTest, GarbageNeverCrashes) {
  Rng R(0xC0FFEE);
  const char Alphabet[] =
      "abxyz01(){};:=~!&|<>+-*/ \n.procifwhilestarbooleal\"#";
  for (int Round = 0; Round != 500; ++Round) {
    std::string Source;
    size_t Length = R.below(120);
    for (size_t I = 0; I != Length; ++I)
      Source += Alphabet[R.below(sizeof(Alphabet) - 1)];
    lang::ParseResult Result = lang::parseProgram(Source);
    // Either a valid program or a diagnostic — never a crash, and a
    // diagnostic always carries a position.
    if (!Result) {
      EXPECT_FALSE(Result.Error.empty());
    }
  }
}

TEST(ParserRobustnessTest, TruncationsOfValidProgramNeverCrash) {
  const std::string Valid = R"(
    real x, y, z;
    proc helper() { x := x + 1; }
    proc main() {
      while prob(3/4) {
        z ~ uniform(0, 2);
        if star { x := x + z; } else { y := y + z; }
        helper();
      }
    }
  )";
  for (size_t Cut = 0; Cut <= Valid.size(); Cut += 3) {
    lang::ParseResult Result =
        lang::parseProgram(Valid.substr(0, Cut));
    if (Result) {
      // A prefix that happens to parse must round-trip.
      EXPECT_FALSE(lang::toString(*Result.Prog).empty());
    }
  }
}

TEST(ParserRobustnessTest, DeeplyNestedExpressions) {
  std::string Expr = "x";
  for (int I = 0; I != 200; ++I)
    Expr = "(" + Expr + " + 1)";
  std::string Source = "real x; proc main() { x := " + Expr + "; }";
  lang::ParseResult Result = lang::parseProgram(Source);
  ASSERT_TRUE(Result) << Result.Error;
}

//===----------------------------------------------------------------------===//
// Output smoke checks
//===----------------------------------------------------------------------===//

TEST(OutputSmokeTest, DotAndWtoOnMultiProcedurePrograms) {
  auto Prog = lang::parseProgramOrDie(R"(
    real x;
    proc even() { if prob(1/2) { odd(); } }
    proc odd() { x := x + 1; even(); }
    proc main() { even(); }
  )");
  cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
  std::string Dot = Graph.toDot();
  // Three cluster subgraphs and the call labels.
  EXPECT_NE(Dot.find("cluster_0"), std::string::npos);
  EXPECT_NE(Dot.find("cluster_2"), std::string::npos);
  EXPECT_NE(Dot.find("call odd"), std::string::npos);
  EXPECT_NE(Dot.find("call even"), std::string::npos);

  std::vector<unsigned> Roots;
  for (unsigned P = 0; P != Graph.numProcs(); ++P)
    Roots.push_back(Graph.proc(P).Exit);
  cfg::Wto W = cfg::Wto::compute(Graph.dependenceSuccessors(), Roots);
  // Mutual recursion forms a component: its textual form has parentheses.
  EXPECT_NE(W.toString().find('('), std::string::npos);
}
