//===- tests/DifferentialBiTest.cpp - BI engines × schedulers × jobs ------===//
//
// The differential-testing harness for the parallel ADD-backed Bayesian
// inference path: every program — random programs across workload mixes
// (prob-heavy, ndet-heavy, call-heavy, mixed; tests/RandomProgramGen.h) and
// the full §6.2 BI benchmark suite — is solved under every combination of
//
//     {BiDomain, AddBiDomain} × {wto, parallel-scc, parallel-intra}
//                             × jobs ∈ {1, 2, 8},
//
// and the posterior at main's entry under a fixed prior must be
//
//  * bit-identical across all nine engine combinations within one domain
//    (the parallel determinism claim: per-SCC single-worker replay, the
//    barrier-synchronized conflict-free intra-component batches, plus,
//    for the ADD backend, canonical migration through the home manager),
//  * equal to 1e-9 across the two domain representations (dense matrix
//    contraction vs ADD rename/multiply/sum-out accumulate in different
//    orders, so exact equality is not expected across domains).
//
// The harness also pins the engine actually going parallel: ThreadSafe
// domains asked for N jobs must report JobsUsed == N, and the ADD backend
// must show real migration traffic whenever transformers were precompiled
// on the pool.
//
//===----------------------------------------------------------------------===//

#include "RandomProgramGen.h"

#include "benchmarks/Programs.h"
#include "cfg/HyperGraph.h"
#include "core/Solver.h"
#include "domains/AddBiDomain.h"
#include "domains/BiDomain.h"
#include "lang/Ast.h"
#include "lang/Parser.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

using namespace pmaf;
using namespace pmaf::core;
using namespace pmaf::domains;
using namespace pmaf::lang;

namespace {

struct Combo {
  IterationStrategy Strategy;
  unsigned Jobs;
};

const Combo Combos[] = {
    {IterationStrategy::WtoRecursive, 1},
    {IterationStrategy::WtoRecursive, 2},
    {IterationStrategy::WtoRecursive, 8},
    {IterationStrategy::ParallelScc, 1},
    {IterationStrategy::ParallelScc, 2},
    {IterationStrategy::ParallelScc, 8},
    {IterationStrategy::ParallelIntra, 1},
    {IterationStrategy::ParallelIntra, 2},
    {IterationStrategy::ParallelIntra, 8},
};

std::vector<double> uniformPrior(const BoolStateSpace &Space) {
  return std::vector<double>(Space.numStates(),
                             1.0 / static_cast<double>(Space.numStates()));
}

/// Solves \p Graph over a fresh domain of type D under \p C and returns
/// the posterior at main's entry. Each combination gets its own domain
/// instance, so agreement also covers cross-instance determinism (nothing
/// leaks between runs through manager state).
template <typename D>
std::vector<double> runCombo(const Program &Prog,
                             const cfg::ProgramGraph &Graph,
                             const BoolStateSpace &Space, const Combo &C,
                             const std::string &Label) {
  D Dom(Space);
  SolverOptions Opts;
  Opts.UseWidening = false;
  Opts.Strategy = C.Strategy;
  Opts.Jobs = C.Jobs;
  auto Result = solve(Graph, Dom, Opts);
  EXPECT_TRUE(Result.Stats.Converged) << Label;
  // Both BI domains are ThreadSafeInterpret: asking for N workers must
  // actually deliver N workers (the sequential gate is gone).
  EXPECT_EQ(Result.Stats.JobsUsed, C.Jobs) << Label;
  if constexpr (std::is_same_v<D, AddBiDomain>) {
    if (C.Jobs > 1 && Result.Stats.PrecompiledTransformers > 0) {
      // The pooled precompile ran inside a parallel phase, so diagrams
      // must have crossed the home/arena boundary in both directions.
      EXPECT_GT(Dom.importedNodes(), 0u) << Label;
      EXPECT_GT(Dom.exportedNodes(), 0u) << Label;
      EXPECT_GE(Dom.arenasCreated(), 1u) << Label;
    }
  }
  unsigned Main = Prog.findProc("main");
  EXPECT_NE(Main, ~0u) << Label;
  if (Main == ~0u)
    return {};
  return Dom.posterior(Result.Values[Graph.proc(Main).Entry],
                       uniformPrior(Space));
}

/// The full differential check for one program.
void expectAllCombosAgree(const Program &Prog, const std::string &Name) {
  BoolStateSpace Space(Prog);
  cfg::ProgramGraph Graph = cfg::ProgramGraph::build(Prog);

  std::vector<std::vector<double>> Dense, Compact;
  for (const Combo &C : Combos) {
    std::string Label = Name + " [" + toString(C.Strategy) +
                        ", jobs=" + std::to_string(C.Jobs) + "]";
    Dense.push_back(runCombo<BiDomain>(Prog, Graph, Space, C,
                                       "BiDomain " + Label));
    Compact.push_back(runCombo<AddBiDomain>(Prog, Graph, Space, C,
                                            "AddBiDomain " + Label));
  }

  for (size_t I = 1; I != Dense.size(); ++I)
    for (size_t S = 0; S != Dense[0].size(); ++S) {
      // Bitwise equality within each domain: scheduler and thread count
      // must not perturb the fixpoint at all.
      EXPECT_EQ(Dense[0][S], Dense[I][S])
          << Name << ": BiDomain combo " << I << ", state " << S;
      EXPECT_EQ(Compact[0][S], Compact[I][S])
          << Name << ": AddBiDomain combo " << I << ", state " << S;
    }
  for (size_t S = 0; S != Dense[0].size(); ++S)
    EXPECT_NEAR(Dense[0][S], Compact[0][S], 1e-9)
        << Name << ": dense vs ADD, state " << S;
}

void sweepConfig(const char *ConfigName, testgen::BoolGenConfig Config,
                 uint64_t Seed, int Rounds) {
  Rng R(Seed);
  for (int Round = 0; Round != Rounds; ++Round) {
    auto Prog = testgen::randomBoolProgram(R, Config);
    expectAllCombosAgree(*Prog,
                         std::string(ConfigName) + " round " +
                             std::to_string(Round));
  }
}

} // namespace

TEST(DifferentialBiTest, ProbHeavyRandomPrograms) {
  sweepConfig("prob-heavy", testgen::BoolGenConfig::probHeavy(),
              20260801, 6);
}

TEST(DifferentialBiTest, NdetHeavyRandomPrograms) {
  sweepConfig("ndet-heavy", testgen::BoolGenConfig::ndetHeavy(),
              20260802, 6);
}

TEST(DifferentialBiTest, CallHeavyRandomPrograms) {
  sweepConfig("call-heavy", testgen::BoolGenConfig::callHeavy(),
              20260803, 6);
}

TEST(DifferentialBiTest, MixedRandomPrograms) {
  sweepConfig("mixed", testgen::BoolGenConfig::mixed(), 20260804, 6);
}

TEST(DifferentialBiTest, BiBenchmarkSuite) {
  for (const benchmarks::BenchProgram &B : benchmarks::biPrograms()) {
    auto Prog = parseProgramOrDie(B.Source);
    expectAllCombosAgree(*Prog, B.Name);
  }
}
