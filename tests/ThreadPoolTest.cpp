//===- tests/ThreadPoolTest.cpp - Fixed-size pool unit tests --------------===//
//
// The support::ThreadPool contract the parallel engine leans on:
//
//  * construction spawns exactly the requested workers (clamped to >= 1)
//    and destruction joins them, draining already-queued work first;
//  * submit() returns a future that carries the task's value or its
//    exception;
//  * parallelFor visits every index of the range exactly once — no skips,
//    no duplicates — including the empty and single-element ranges and
//    ranges much larger than the worker count;
//  * an exception thrown by one iteration is rethrown to the caller and
//    leaves the pool usable for later loops;
//  * the process-wide shared pool (the matrix kernels' pool) can be
//    resized and torn back down via setSharedParallelism.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <vector>

using namespace pmaf;

TEST(ThreadPoolTest, StartupAndShutdownAcrossSizes) {
  for (unsigned N : {0u, 1u, 2u, 4u, 8u}) {
    support::ThreadPool Pool(N);
    EXPECT_EQ(Pool.size(), std::max(N, 1u));
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueuedWork) {
  std::atomic<int> Ran{0};
  {
    support::ThreadPool Pool(2);
    for (int I = 0; I != 64; ++I)
      Pool.post([&Ran] { Ran.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_EQ(Ran.load(), 64);
}

TEST(ThreadPoolTest, SubmitReturnsValueThroughFuture) {
  support::ThreadPool Pool(2);
  auto Future = Pool.submit([] { return 6 * 7; });
  EXPECT_EQ(Future.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  support::ThreadPool Pool(2);
  auto Future =
      Pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(Future.get(), std::runtime_error);
  // The worker survives its task's exception.
  EXPECT_EQ(Pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, NestedSubmitFromInsideTask) {
  support::ThreadPool Pool(2);
  auto Outer = Pool.submit([&Pool] { return Pool.submit([] { return 7; }); });
  EXPECT_EQ(Outer.get().get(), 7);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (unsigned N : {1u, 2u, 4u}) {
    support::ThreadPool Pool(N);
    constexpr size_t Size = 10'000;
    std::vector<std::atomic<unsigned>> Visits(Size);
    Pool.parallelFor(0, Size, [&](size_t I) {
      Visits[I].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t I = 0; I != Size; ++I)
      ASSERT_EQ(Visits[I].load(), 1u) << "index " << I << " with " << N
                                      << " workers";
  }
}

TEST(ThreadPoolTest, ParallelForEmptyAndSingleRanges) {
  support::ThreadPool Pool(4);
  std::atomic<int> Count{0};
  Pool.parallelFor(0, 0, [&](size_t) { Count.fetch_add(1); });
  EXPECT_EQ(Count.load(), 0);
  Pool.parallelFor(5, 6, [&](size_t I) {
    EXPECT_EQ(I, 5u);
    Count.fetch_add(1);
  });
  EXPECT_EQ(Count.load(), 1);
}

TEST(ThreadPoolTest, ParallelForChunksPartitionTheRange) {
  support::ThreadPool Pool(4);
  constexpr size_t Size = 4'321;
  std::vector<std::atomic<unsigned>> Visits(Size);
  Pool.parallelForChunks(0, Size, [&](size_t Begin, size_t End) {
    ASSERT_LE(Begin, End);
    for (size_t I = Begin; I != End; ++I)
      Visits[I].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t I = 0; I != Size; ++I)
    ASSERT_EQ(Visits[I].load(), 1u) << "index " << I;
}

TEST(ThreadPoolTest, ParallelForRethrowsAndPoolStaysUsable) {
  support::ThreadPool Pool(4);
  EXPECT_THROW(Pool.parallelFor(0, 1'000,
                                [&](size_t I) {
                                  if (I == 137)
                                    throw std::runtime_error("iteration 137");
                                }),
               std::runtime_error);

  // The failed loop must not wedge the pool: a fresh loop still covers
  // its range.
  std::atomic<size_t> Count{0};
  Pool.parallelFor(0, 100, [&](size_t) {
    Count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(Count.load(), 100u);
}

TEST(ThreadPoolTest, SharedPoolConfiguration) {
  // Sequential by default (and after reset): no pool at all.
  support::setSharedParallelism(1);
  EXPECT_EQ(support::sharedPool(), nullptr);
  EXPECT_EQ(support::sharedParallelism(), 1u);

  support::setSharedParallelism(4);
  ASSERT_NE(support::sharedPool(), nullptr);
  EXPECT_EQ(support::sharedPool()->size(), 4u);
  EXPECT_EQ(support::sharedParallelism(), 4u);

  std::atomic<int> Count{0};
  support::sharedPool()->parallelFor(0, 256, [&](size_t) {
    Count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(Count.load(), 256);

  support::setSharedParallelism(1);
  EXPECT_EQ(support::sharedPool(), nullptr);
}

TEST(ThreadPoolTest, WorkerBusySecondsAreTallied) {
  support::ThreadPool Pool(2);
  for (int I = 0; I != 8; ++I)
    Pool.submit([] {
      volatile double X = 1.0;
      for (int K = 0; K != 100'000; ++K)
        X = X * 1.0000001;
      return X;
    }).get();
  std::vector<double> Busy = Pool.workerBusySeconds();
  EXPECT_EQ(Busy.size(), Pool.size());
  double Total = 0.0;
  for (double B : Busy)
    Total += B;
  EXPECT_GT(Total, 0.0);
}
