//===- tests/ThreadPoolTest.cpp - Fixed-size pool unit tests --------------===//
//
// The support::ThreadPool contract the parallel engine leans on:
//
//  * construction spawns exactly the requested workers (clamped to >= 1)
//    and destruction joins them, draining already-queued work first;
//  * submit() returns a future that carries the task's value or its
//    exception;
//  * parallelFor visits every index of the range exactly once — no skips,
//    no duplicates — including the empty and single-element ranges and
//    ranges much larger than the worker count;
//  * an exception thrown by one iteration is rethrown to the caller and
//    leaves the pool usable for later loops;
//  * ParallelBatch — the reusable caller-participates barrier the
//    intra-component scheduler leans on — covers every index exactly
//    once per run, can be reused back-to-back under contention, and
//    rethrows a unit's exception after the barrier;
//  * the process-wide shared pool (the matrix kernels' pool) can be
//    resized and torn back down via setSharedParallelism, resolves 0 to
//    one worker per hardware thread, and refuses to recreate the pool
//    while tasks are in flight (keeping the old pool alive).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace pmaf;

TEST(ThreadPoolTest, StartupAndShutdownAcrossSizes) {
  for (unsigned N : {0u, 1u, 2u, 4u, 8u}) {
    support::ThreadPool Pool(N);
    EXPECT_EQ(Pool.size(), std::max(N, 1u));
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueuedWork) {
  std::atomic<int> Ran{0};
  {
    support::ThreadPool Pool(2);
    for (int I = 0; I != 64; ++I)
      Pool.post([&Ran] { Ran.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_EQ(Ran.load(), 64);
}

TEST(ThreadPoolTest, SubmitReturnsValueThroughFuture) {
  support::ThreadPool Pool(2);
  auto Future = Pool.submit([] { return 6 * 7; });
  EXPECT_EQ(Future.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  support::ThreadPool Pool(2);
  auto Future =
      Pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(Future.get(), std::runtime_error);
  // The worker survives its task's exception.
  EXPECT_EQ(Pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, NestedSubmitFromInsideTask) {
  support::ThreadPool Pool(2);
  auto Outer = Pool.submit([&Pool] { return Pool.submit([] { return 7; }); });
  EXPECT_EQ(Outer.get().get(), 7);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (unsigned N : {1u, 2u, 4u}) {
    support::ThreadPool Pool(N);
    constexpr size_t Size = 10'000;
    std::vector<std::atomic<unsigned>> Visits(Size);
    Pool.parallelFor(0, Size, [&](size_t I) {
      Visits[I].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t I = 0; I != Size; ++I)
      ASSERT_EQ(Visits[I].load(), 1u) << "index " << I << " with " << N
                                      << " workers";
  }
}

TEST(ThreadPoolTest, ParallelForEmptyAndSingleRanges) {
  support::ThreadPool Pool(4);
  std::atomic<int> Count{0};
  Pool.parallelFor(0, 0, [&](size_t) { Count.fetch_add(1); });
  EXPECT_EQ(Count.load(), 0);
  Pool.parallelFor(5, 6, [&](size_t I) {
    EXPECT_EQ(I, 5u);
    Count.fetch_add(1);
  });
  EXPECT_EQ(Count.load(), 1);
}

TEST(ThreadPoolTest, ParallelForChunksPartitionTheRange) {
  support::ThreadPool Pool(4);
  constexpr size_t Size = 4'321;
  std::vector<std::atomic<unsigned>> Visits(Size);
  Pool.parallelForChunks(0, Size, [&](size_t Begin, size_t End) {
    ASSERT_LE(Begin, End);
    for (size_t I = Begin; I != End; ++I)
      Visits[I].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t I = 0; I != Size; ++I)
    ASSERT_EQ(Visits[I].load(), 1u) << "index " << I;
}

TEST(ThreadPoolTest, ParallelForRethrowsAndPoolStaysUsable) {
  support::ThreadPool Pool(4);
  EXPECT_THROW(Pool.parallelFor(0, 1'000,
                                [&](size_t I) {
                                  if (I == 137)
                                    throw std::runtime_error("iteration 137");
                                }),
               std::runtime_error);

  // The failed loop must not wedge the pool: a fresh loop still covers
  // its range.
  std::atomic<size_t> Count{0};
  Pool.parallelFor(0, 100, [&](size_t) {
    Count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(Count.load(), 100u);
}

TEST(ThreadPoolTest, ParallelBatchCoversEveryIndexExactlyOnce) {
  support::ThreadPool Pool(4);
  support::ParallelBatch Batch(Pool);
  for (size_t Count : {size_t(0), size_t(1), size_t(2), size_t(7),
                       size_t(64), size_t(1'000)}) {
    std::vector<std::atomic<unsigned>> Visits(Count);
    double Waited = Batch.run(Count, [&](size_t I) {
      Visits[I].fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_GE(Waited, 0.0);
    for (size_t I = 0; I != Count; ++I)
      ASSERT_EQ(Visits[I].load(), 1u)
          << "index " << I << " of a batch of " << Count;
  }
}

TEST(ThreadPoolTest, ParallelBatchReusableUnderContention) {
  // The intra-component scheduler reuses one ParallelBatch across every
  // batch of every outer pass, on a pool that is simultaneously running
  // unrelated work (transformer precompilation, matrix kernels). Each
  // run's barrier must still see exactly its own units.
  support::ThreadPool Pool(4);
  std::atomic<uint64_t> Noise{0};

  support::ParallelBatch Batch(Pool);
  constexpr size_t Rounds = 200;
  constexpr size_t Width = 16;
  std::vector<std::atomic<unsigned>> Visits(Width);
  for (size_t Round = 0; Round != Rounds; ++Round) {
    // Unrelated (finite) tasks queued ahead of this round's helpers:
    // they delay helper startup, so the caller lane races far ahead.
    for (int I = 0; I != 4; ++I)
      Pool.post([&Noise] {
        for (int K = 0; K != 1'000; ++K)
          Noise.fetch_add(1, std::memory_order_relaxed);
      });
    Batch.run(Width, [&](size_t I) {
      Visits[I].fetch_add(1, std::memory_order_relaxed);
    });
    // The barrier guarantee: when run() returns, every unit of THIS
    // round has executed — no unit of round k may still be pending when
    // round k+1 starts.
    for (size_t I = 0; I != Width; ++I)
      ASSERT_EQ(Visits[I].load(), Round + 1)
          << "round " << Round << ", unit " << I;
  }
  EXPECT_GT(Noise.load(), 0u);
}

TEST(ThreadPoolTest, ParallelBatchRethrowsAndStaysUsable) {
  support::ThreadPool Pool(4);
  support::ParallelBatch Batch(Pool);
  EXPECT_THROW(Batch.run(100,
                         [](size_t I) {
                           if (I == 37)
                             throw std::runtime_error("unit 37");
                         }),
               std::runtime_error);
  // The failed batch must not wedge the barrier: the same ParallelBatch
  // object still covers a fresh batch completely.
  std::atomic<size_t> Count{0};
  Batch.run(100, [&](size_t) {
    Count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(Count.load(), 100u);
}

TEST(ThreadPoolTest, SharedPoolConfiguration) {
  // Sequential by default (and after reset): no pool at all.
  support::setSharedParallelism(1);
  EXPECT_EQ(support::sharedPool(), nullptr);
  EXPECT_EQ(support::sharedParallelism(), 1u);

  support::setSharedParallelism(4);
  ASSERT_NE(support::sharedPool(), nullptr);
  EXPECT_EQ(support::sharedPool()->size(), 4u);
  EXPECT_EQ(support::sharedParallelism(), 4u);

  std::atomic<int> Count{0};
  support::sharedPool()->parallelFor(0, 256, [&](size_t) {
    Count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(Count.load(), 256);

  support::setSharedParallelism(1);
  EXPECT_EQ(support::sharedPool(), nullptr);
}

TEST(ThreadPoolTest, SharedPoolZeroMeansOneWorkerPerHardwareThread) {
  const unsigned Hw = support::ThreadPool::hardwareConcurrency();
  EXPECT_TRUE(support::setSharedParallelism(0));
  EXPECT_EQ(support::sharedParallelism(), std::max(Hw, 1u));
  if (Hw > 1) {
    ASSERT_NE(support::sharedPool(), nullptr);
    EXPECT_EQ(support::sharedPool()->size(), Hw);
  } else {
    EXPECT_EQ(support::sharedPool(), nullptr);
  }
  EXPECT_TRUE(support::setSharedParallelism(1));
}

TEST(ThreadPoolTest, SharedPoolResizeRefusedWhileTasksInFlight) {
  ASSERT_TRUE(support::setSharedParallelism(4));
  support::ThreadPool *Old = support::sharedPool();
  ASSERT_NE(Old, nullptr);

  // Park one task on the pool until released.
  std::mutex M;
  std::condition_variable Cv;
  bool Started = false, Release = false;
  Old->post([&] {
    std::unique_lock<std::mutex> Lock(M);
    Started = true;
    Cv.notify_all();
    Cv.wait(Lock, [&] { return Release; });
  });
  {
    std::unique_lock<std::mutex> Lock(M);
    Cv.wait(Lock, [&] { return Started; });
  }
  EXPECT_FALSE(Old->idle());

  // Recreating the pool out from under an in-flight task would hand its
  // worker thread a dangling queue: the resize must be refused and the
  // old pool kept alive at its old size.
  EXPECT_FALSE(support::setSharedParallelism(2));
  EXPECT_EQ(support::sharedPool(), Old);
  EXPECT_EQ(support::sharedParallelism(), 4u);

  {
    std::lock_guard<std::mutex> Lock(M);
    Release = true;
  }
  Cv.notify_all();
  while (!Old->idle())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  // Once the pool is idle again the resize goes through.
  EXPECT_TRUE(support::setSharedParallelism(2));
  ASSERT_NE(support::sharedPool(), nullptr);
  EXPECT_EQ(support::sharedPool()->size(), 2u);
  EXPECT_TRUE(support::setSharedParallelism(1));
  EXPECT_EQ(support::sharedPool(), nullptr);
}

TEST(ThreadPoolTest, WorkerBusySecondsAreTallied) {
  support::ThreadPool Pool(2);
  for (int I = 0; I != 8; ++I)
    Pool.submit([] {
      volatile double X = 1.0;
      for (int K = 0; K != 100'000; ++K)
        X = X * 1.0000001;
      return X;
    }).get();
  std::vector<double> Busy = Pool.workerBusySeconds();
  EXPECT_EQ(Busy.size(), Pool.size());
  double Total = 0.0;
  for (double B : Busy)
    Total += B;
  EXPECT_GT(Total, 0.0);
}
