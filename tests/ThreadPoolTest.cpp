//===- tests/ThreadPoolTest.cpp - Fixed-size pool unit tests --------------===//
//
// The support::ThreadPool contract the parallel engine leans on:
//
//  * construction spawns exactly the requested workers (clamped to >= 1)
//    and destruction joins them, draining already-queued work first;
//  * submit() returns a future that carries the task's value or its
//    exception;
//  * parallelFor visits every index of the range exactly once — no skips,
//    no duplicates — including the empty and single-element ranges and
//    ranges much larger than the worker count;
//  * an exception thrown by one iteration is rethrown to the caller and
//    leaves the pool usable for later loops;
//  * ParallelBatch — the reusable caller-participates barrier the
//    intra-component scheduler leans on — covers every index exactly
//    once per run, can be reused back-to-back under contention, and
//    rethrows a unit's exception after the barrier;
//  * the process-wide shared pool (the matrix kernels' pool) can be
//    resized and torn back down via setSharedParallelism, resolves 0 to
//    one worker per hardware thread, and refuses to recreate the pool
//    while tasks are in flight (keeping the old pool alive);
//  * the work-stealing deques honor the locality protocol: an owner pops
//    its pinned tasks front-first in submission order, thieves take from
//    the back of saturated deques only (a lone pinned task waits for its
//    busy owner), exceptions travel through stolen tasks, inFlightTasks()
//    drains to zero under stealing, and ParallelBatch::runSticky pins the
//    same unit to the same lane on every pass.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace pmaf;

TEST(ThreadPoolTest, StartupAndShutdownAcrossSizes) {
  for (unsigned N : {0u, 1u, 2u, 4u, 8u}) {
    support::ThreadPool Pool(N);
    EXPECT_EQ(Pool.size(), std::max(N, 1u));
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueuedWork) {
  std::atomic<int> Ran{0};
  {
    support::ThreadPool Pool(2);
    for (int I = 0; I != 64; ++I)
      Pool.post([&Ran] { Ran.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_EQ(Ran.load(), 64);
}

TEST(ThreadPoolTest, SubmitReturnsValueThroughFuture) {
  support::ThreadPool Pool(2);
  auto Future = Pool.submit([] { return 6 * 7; });
  EXPECT_EQ(Future.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  support::ThreadPool Pool(2);
  auto Future =
      Pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(Future.get(), std::runtime_error);
  // The worker survives its task's exception.
  EXPECT_EQ(Pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, NestedSubmitFromInsideTask) {
  support::ThreadPool Pool(2);
  auto Outer = Pool.submit([&Pool] { return Pool.submit([] { return 7; }); });
  EXPECT_EQ(Outer.get().get(), 7);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (unsigned N : {1u, 2u, 4u}) {
    support::ThreadPool Pool(N);
    constexpr size_t Size = 10'000;
    std::vector<std::atomic<unsigned>> Visits(Size);
    Pool.parallelFor(0, Size, [&](size_t I) {
      Visits[I].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t I = 0; I != Size; ++I)
      ASSERT_EQ(Visits[I].load(), 1u) << "index " << I << " with " << N
                                      << " workers";
  }
}

TEST(ThreadPoolTest, ParallelForEmptyAndSingleRanges) {
  support::ThreadPool Pool(4);
  std::atomic<int> Count{0};
  Pool.parallelFor(0, 0, [&](size_t) { Count.fetch_add(1); });
  EXPECT_EQ(Count.load(), 0);
  Pool.parallelFor(5, 6, [&](size_t I) {
    EXPECT_EQ(I, 5u);
    Count.fetch_add(1);
  });
  EXPECT_EQ(Count.load(), 1);
}

TEST(ThreadPoolTest, ParallelForChunksPartitionTheRange) {
  support::ThreadPool Pool(4);
  constexpr size_t Size = 4'321;
  std::vector<std::atomic<unsigned>> Visits(Size);
  Pool.parallelForChunks(0, Size, [&](size_t Begin, size_t End) {
    ASSERT_LE(Begin, End);
    for (size_t I = Begin; I != End; ++I)
      Visits[I].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t I = 0; I != Size; ++I)
    ASSERT_EQ(Visits[I].load(), 1u) << "index " << I;
}

TEST(ThreadPoolTest, ParallelForRethrowsAndPoolStaysUsable) {
  support::ThreadPool Pool(4);
  EXPECT_THROW(Pool.parallelFor(0, 1'000,
                                [&](size_t I) {
                                  if (I == 137)
                                    throw std::runtime_error("iteration 137");
                                }),
               std::runtime_error);

  // The failed loop must not wedge the pool: a fresh loop still covers
  // its range.
  std::atomic<size_t> Count{0};
  Pool.parallelFor(0, 100, [&](size_t) {
    Count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(Count.load(), 100u);
}

TEST(ThreadPoolTest, ParallelBatchCoversEveryIndexExactlyOnce) {
  support::ThreadPool Pool(4);
  support::ParallelBatch Batch(Pool);
  for (size_t Count : {size_t(0), size_t(1), size_t(2), size_t(7),
                       size_t(64), size_t(1'000)}) {
    std::vector<std::atomic<unsigned>> Visits(Count);
    double Waited = Batch.run(Count, [&](size_t I) {
      Visits[I].fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_GE(Waited, 0.0);
    for (size_t I = 0; I != Count; ++I)
      ASSERT_EQ(Visits[I].load(), 1u)
          << "index " << I << " of a batch of " << Count;
  }
}

TEST(ThreadPoolTest, ParallelBatchReusableUnderContention) {
  // The intra-component scheduler reuses one ParallelBatch across every
  // batch of every outer pass, on a pool that is simultaneously running
  // unrelated work (transformer precompilation, matrix kernels). Each
  // run's barrier must still see exactly its own units.
  support::ThreadPool Pool(4);
  std::atomic<uint64_t> Noise{0};

  support::ParallelBatch Batch(Pool);
  constexpr size_t Rounds = 200;
  constexpr size_t Width = 16;
  std::vector<std::atomic<unsigned>> Visits(Width);
  for (size_t Round = 0; Round != Rounds; ++Round) {
    // Unrelated (finite) tasks queued ahead of this round's helpers:
    // they delay helper startup, so the caller lane races far ahead.
    for (int I = 0; I != 4; ++I)
      Pool.post([&Noise] {
        for (int K = 0; K != 1'000; ++K)
          Noise.fetch_add(1, std::memory_order_relaxed);
      });
    Batch.run(Width, [&](size_t I) {
      Visits[I].fetch_add(1, std::memory_order_relaxed);
    });
    // The barrier guarantee: when run() returns, every unit of THIS
    // round has executed — no unit of round k may still be pending when
    // round k+1 starts.
    for (size_t I = 0; I != Width; ++I)
      ASSERT_EQ(Visits[I].load(), Round + 1)
          << "round " << Round << ", unit " << I;
  }
  EXPECT_GT(Noise.load(), 0u);
}

TEST(ThreadPoolTest, ParallelBatchRethrowsAndStaysUsable) {
  support::ThreadPool Pool(4);
  support::ParallelBatch Batch(Pool);
  EXPECT_THROW(Batch.run(100,
                         [](size_t I) {
                           if (I == 37)
                             throw std::runtime_error("unit 37");
                         }),
               std::runtime_error);
  // The failed batch must not wedge the barrier: the same ParallelBatch
  // object still covers a fresh batch completely.
  std::atomic<size_t> Count{0};
  Batch.run(100, [&](size_t) {
    Count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(Count.load(), 100u);
}

TEST(ThreadPoolTest, SharedPoolConfiguration) {
  // Sequential by default (and after reset): no pool at all.
  support::setSharedParallelism(1);
  EXPECT_EQ(support::sharedPool(), nullptr);
  EXPECT_EQ(support::sharedParallelism(), 1u);

  support::setSharedParallelism(4);
  ASSERT_NE(support::sharedPool(), nullptr);
  EXPECT_EQ(support::sharedPool()->size(), 4u);
  EXPECT_EQ(support::sharedParallelism(), 4u);

  std::atomic<int> Count{0};
  support::sharedPool()->parallelFor(0, 256, [&](size_t) {
    Count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(Count.load(), 256);

  support::setSharedParallelism(1);
  EXPECT_EQ(support::sharedPool(), nullptr);
}

TEST(ThreadPoolTest, SharedPoolZeroMeansOneWorkerPerHardwareThread) {
  const unsigned Hw = support::ThreadPool::hardwareConcurrency();
  EXPECT_TRUE(support::setSharedParallelism(0));
  EXPECT_EQ(support::sharedParallelism(), std::max(Hw, 1u));
  if (Hw > 1) {
    ASSERT_NE(support::sharedPool(), nullptr);
    EXPECT_EQ(support::sharedPool()->size(), Hw);
  } else {
    EXPECT_EQ(support::sharedPool(), nullptr);
  }
  EXPECT_TRUE(support::setSharedParallelism(1));
}

TEST(ThreadPoolTest, SharedPoolResizeRefusedWhileTasksInFlight) {
  ASSERT_TRUE(support::setSharedParallelism(4));
  support::ThreadPool *Old = support::sharedPool();
  ASSERT_NE(Old, nullptr);

  // Park one task on the pool until released.
  std::mutex M;
  std::condition_variable Cv;
  bool Started = false, Release = false;
  Old->post([&] {
    std::unique_lock<std::mutex> Lock(M);
    Started = true;
    Cv.notify_all();
    Cv.wait(Lock, [&] { return Release; });
  });
  {
    std::unique_lock<std::mutex> Lock(M);
    Cv.wait(Lock, [&] { return Started; });
  }
  EXPECT_FALSE(Old->idle());

  // Recreating the pool out from under an in-flight task would hand its
  // worker thread a dangling queue: the resize must be refused and the
  // old pool kept alive at its old size.
  EXPECT_FALSE(support::setSharedParallelism(2));
  EXPECT_EQ(support::sharedPool(), Old);
  EXPECT_EQ(support::sharedParallelism(), 4u);

  {
    std::lock_guard<std::mutex> Lock(M);
    Release = true;
  }
  Cv.notify_all();
  while (!Old->idle())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  // Once the pool is idle again the resize goes through.
  EXPECT_TRUE(support::setSharedParallelism(2));
  ASSERT_NE(support::sharedPool(), nullptr);
  EXPECT_EQ(support::sharedPool()->size(), 2u);
  EXPECT_TRUE(support::setSharedParallelism(1));
  EXPECT_EQ(support::sharedPool(), nullptr);
}

TEST(ThreadPoolTest, SharedPoolRefusalIsObservableThenIdleResizeSucceeds) {
  ASSERT_TRUE(support::setSharedParallelism(4));
  support::ThreadPool *Old = support::sharedPool();
  ASSERT_NE(Old, nullptr);

  std::mutex M;
  std::condition_variable Cv;
  bool Started = false, Release = false;
  Old->post([&] {
    std::unique_lock<std::mutex> Lock(M);
    Started = true;
    Cv.notify_all();
    Cv.wait(Lock, [&] { return Release; });
  });
  {
    std::unique_lock<std::mutex> Lock(M);
    Cv.wait(Lock, [&] { return Started; });
  }

  // Resize under load: refused, and the refusal carries a reason a
  // long-lived caller (the pmafd `configure` handler) can surface as a
  // structured error instead of a silently wrong-sized pool.
  std::string WhyRefused;
  EXPECT_FALSE(support::setSharedParallelism(2, &WhyRefused));
  EXPECT_NE(WhyRefused.find("in flight"), std::string::npos) << WhyRefused;
  EXPECT_EQ(support::sharedPool(), Old);
  EXPECT_EQ(support::sharedParallelism(), 4u);

  {
    std::lock_guard<std::mutex> Lock(M);
    Release = true;
  }
  Cv.notify_all();
  while (!Old->idle())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  // Resize at idle (the between-requests state of a daemon): reliably
  // succeeds and leaves the reason untouched.
  WhyRefused.clear();
  EXPECT_TRUE(support::setSharedParallelism(2, &WhyRefused));
  EXPECT_TRUE(WhyRefused.empty());
  ASSERT_NE(support::sharedPool(), nullptr);
  EXPECT_EQ(support::sharedPool()->size(), 2u);
  EXPECT_TRUE(support::setSharedParallelism(1, &WhyRefused));
  EXPECT_EQ(support::sharedPool(), nullptr);
}

TEST(ThreadPoolTest, WorkerBusySecondsAreTallied) {
  support::ThreadPool Pool(2);
  for (int I = 0; I != 8; ++I)
    Pool.submit([] {
      volatile double X = 1.0;
      for (int K = 0; K != 100'000; ++K)
        X = X * 1.0000001;
      return X;
    }).get();
  std::vector<double> Busy = Pool.workerBusySeconds();
  EXPECT_EQ(Busy.size(), Pool.size());
  double Total = 0.0;
  for (double B : Busy)
    Total += B;
  EXPECT_GT(Total, 0.0);
}

//===----------------------------------------------------------------------===//
// The work-stealing deques and the affinity protocol
//===----------------------------------------------------------------------===//

namespace {

/// Parks one task on worker \p Owner's deque until release() is called.
/// A lone pinned task is below the saturation threshold, so no other
/// worker can steal it — the blocker is guaranteed to occupy exactly the
/// owner.
class WorkerBlocker {
public:
  WorkerBlocker(support::ThreadPool &Pool, unsigned Owner) {
    Pool.postTo(Owner, [this] {
      std::unique_lock<std::mutex> Lock(M);
      Started = true;
      Cv.notify_all();
      Cv.wait(Lock, [this] { return Released; });
    });
    std::unique_lock<std::mutex> Lock(M);
    Cv.wait(Lock, [this] { return Started; });
  }

  void release() {
    {
      std::lock_guard<std::mutex> Lock(M);
      Released = true;
    }
    Cv.notify_all();
  }

private:
  std::mutex M;
  std::condition_variable Cv;
  bool Started = false, Released = false;
};

} // namespace

TEST(ThreadPoolTest, OwnerPopsPinnedTasksInSubmissionOrder) {
  // One worker: nothing can be stolen, so the deque's front-pop order is
  // directly observable — pinned tasks run FIFO.
  support::ThreadPool Pool(1);
  WorkerBlocker Blocker(Pool, 0);
  std::mutex M;
  std::vector<int> Order;
  for (int K = 0; K != 8; ++K)
    Pool.postTo(0, [&M, &Order, K] {
      std::lock_guard<std::mutex> Lock(M);
      Order.push_back(K);
    });
  Blocker.release();
  while (!Pool.idle())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(Order.size(), 8u);
  for (int K = 0; K != 8; ++K)
    EXPECT_EQ(Order[K], K);
  EXPECT_EQ(Pool.totalSteals(), 0u);
  EXPECT_EQ(Pool.totalAffinityHits(), 9u); // blocker + 8 pinned tasks
}

TEST(ThreadPoolTest, ThiefTakesFromTheBackOfASaturatedDeque) {
  // Worker 0 is parked with 6 pinned tasks queued behind the blocker;
  // worker 1 must steal from the *back* (descending indices) and stop at
  // the last remaining task (a lone pinned task is not stealable), which
  // the owner then pops.
  support::ThreadPool Pool(2);
  WorkerBlocker Blocker(Pool, 0);
  // Park the thief too, so the whole backlog is in place before it scans.
  WorkerBlocker ThiefGate(Pool, 1);
  std::mutex M;
  std::vector<std::pair<unsigned, int>> Ran; // (executing worker, index)
  for (int K = 1; K <= 6; ++K)
    Pool.postTo(0, [&, K] {
      std::lock_guard<std::mutex> Lock(M);
      Ran.push_back({Pool.currentWorker(), K});
    });
  ThiefGate.release();
  // Worker 1 drains everything stealable; the blocker plus the one
  // unstealable task stay in flight.
  while (Pool.inFlightTasks() > 2)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  {
    std::lock_guard<std::mutex> Lock(M);
    ASSERT_EQ(Ran.size(), 5u);
    for (size_t I = 0; I != Ran.size(); ++I) {
      EXPECT_EQ(Ran[I].first, 1u) << "stolen task ran off-thief";
      EXPECT_EQ(Ran[I].second, 6 - static_cast<int>(I))
          << "steal order must walk the deque from the back";
    }
  }
  Blocker.release();
  while (!Pool.idle())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  {
    std::lock_guard<std::mutex> Lock(M);
    ASSERT_EQ(Ran.size(), 6u);
    EXPECT_EQ(Ran.back().first, 0u) << "the last task belongs to its owner";
    EXPECT_EQ(Ran.back().second, 1);
  }
  EXPECT_EQ(Pool.totalSteals(), 5u);
  EXPECT_EQ(Pool.totalAffinityHits(), 3u); // two blockers + task 1
}

TEST(ThreadPoolTest, LonePinnedTaskWaitsForItsBusyOwner) {
  // Below the saturation threshold the affinity contract wins: an idle
  // worker must NOT poach a single pinned task from a busy owner.
  support::ThreadPool Pool(2);
  WorkerBlocker Blocker(Pool, 0);
  std::atomic<bool> Ran{false};
  std::atomic<unsigned> RanOn{support::ThreadPool::NoWorker};
  Pool.postTo(0, [&] {
    RanOn.store(Pool.currentWorker(), std::memory_order_relaxed);
    Ran.store(true, std::memory_order_relaxed);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(Ran.load()) << "a lone pinned task must wait for its owner";
  EXPECT_EQ(Pool.totalSteals(), 0u);
  Blocker.release();
  while (!Pool.idle())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(Ran.load());
  EXPECT_EQ(RanOn.load(), 0u);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughAStolenTask) {
  // Two pinned tasks saturate the parked owner's deque; the thief steals
  // the thrower from the back, and the exception still travels through
  // the future to the caller.
  support::ThreadPool Pool(2);
  WorkerBlocker Blocker(Pool, 0);
  auto Quiet = Pool.submitTo(0, [] { return 1; });
  auto Thrower = Pool.submitTo(0, []() -> int {
    throw std::runtime_error("stolen boom");
  });
  EXPECT_THROW(Thrower.get(), std::runtime_error);
  Blocker.release();
  EXPECT_EQ(Quiet.get(), 1);
  // The thief survives the stolen task's exception.
  EXPECT_EQ(Pool.submit([] { return 2; }).get(), 2);
  // Counters are bumped after the task body runs, so only check once the
  // pool has quiesced.
  while (!Pool.idle())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_GE(Pool.totalSteals(), 1u);
}

TEST(ThreadPoolTest, IdleContractHoldsUnderStealing) {
  // A storm of pinned tasks aimed at two hot lanes (forcing steals) mixed
  // with injected tasks: inFlightTasks() must drain to exactly zero and
  // every task must have run.
  support::ThreadPool Pool(4);
  constexpr int Tasks = 2'000;
  std::atomic<int> Ran{0};
  for (int K = 0; K != Tasks; ++K) {
    auto Fn = [&Ran] { Ran.fetch_add(1, std::memory_order_relaxed); };
    if (K % 4 == 0)
      Pool.post(Fn);
    else
      Pool.postTo(K % 2, Fn); // lanes 0/1 only: lanes 2/3 must steal
  }
  while (!Pool.idle())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(Ran.load(), Tasks);
  EXPECT_EQ(Pool.inFlightTasks(), 0u);
  EXPECT_EQ(Pool.totalTasksRun(), static_cast<uint64_t>(Tasks));
}

TEST(ThreadPoolTest, CurrentWorkerIdentifiesOwnerAndOutsiders) {
  support::ThreadPool Pool(4);
  EXPECT_EQ(Pool.currentWorker(), support::ThreadPool::NoWorker);
  // A lone pinned task cannot be stolen, so it reports its owner's lane.
  for (unsigned W : {0u, 2u, 3u}) {
    unsigned RanOn = Pool.submitTo(W, [&Pool] {
      return Pool.currentWorker();
    }).get();
    EXPECT_EQ(RanOn, W);
  }
  // A worker of one pool is an outsider to another pool.
  support::ThreadPool Other(2);
  EXPECT_EQ(Other.submit([&Pool] { return Pool.currentWorker(); }).get(),
            support::ThreadPool::NoWorker);
}

TEST(ThreadPoolTest, RunStickyCoversEveryIndexExactlyOnce) {
  support::ThreadPool Pool(4);
  support::ParallelBatch Batch(Pool);
  for (size_t Count : {size_t(0), size_t(1), size_t(2), size_t(7),
                       size_t(64), size_t(1'000)}) {
    std::vector<std::atomic<unsigned>> Visits(Count);
    double Waited = Batch.runSticky(Count, [&](size_t I) {
      Visits[I].fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_GE(Waited, 0.0);
    for (size_t I = 0; I != Count; ++I)
      ASSERT_EQ(Visits[I].load(), 1u)
          << "index " << I << " of a sticky batch of " << Count;
  }
}

TEST(ThreadPoolTest, RunStickyPinsUnitsToStableLanes) {
  // The point of runSticky: unit I is posted to lane I % (Workers + 1)
  // with lane `Workers` being the caller, so the same unit lands on the
  // same lane on every pass. With a single worker there is no thief, so
  // the placement is exactly deterministic and directly observable.
  support::ThreadPool Pool(1);
  support::ParallelBatch Batch(Pool);
  constexpr size_t Width = 12;
  std::array<std::atomic<unsigned>, Width> First, Second;
  auto Record = [&Pool](std::array<std::atomic<unsigned>, Width> &Out) {
    return [&Out, &Pool](size_t I) {
      Out[I].store(Pool.currentWorker(), std::memory_order_relaxed);
    };
  };
  Batch.runSticky(Width, Record(First));
  Batch.runSticky(Width, Record(Second));
  for (size_t I = 0; I != Width; ++I) {
    if (I % 2 == 1) { // lane 1 == Workers: the caller's share
      EXPECT_EQ(First[I].load(), support::ThreadPool::NoWorker)
          << "unit " << I << " belongs to the caller lane";
    } else {
      EXPECT_EQ(First[I].load(), 0u) << "unit " << I;
    }
    EXPECT_EQ(First[I].load(), Second[I].load())
        << "unit " << I << " moved between passes";
  }
  EXPECT_EQ(Pool.totalSteals(), 0u);
  EXPECT_GT(Pool.totalAffinityHits(), 0u);

  // Under saturation a wider pool may steal pinned units (locality is a
  // preference, not a correctness constraint) — but caller units always
  // stay on the caller, and worker units never leak onto it.
  support::ThreadPool Wide(2);
  support::ParallelBatch WideBatch(Wide);
  std::array<std::atomic<unsigned>, Width> Where;
  WideBatch.runSticky(Width, [&Where, &Wide](size_t I) {
    Where[I].store(Wide.currentWorker(), std::memory_order_relaxed);
  });
  for (size_t I = 0; I != Width; ++I) {
    if (I % 3 == 2)
      EXPECT_EQ(Where[I].load(), support::ThreadPool::NoWorker) << I;
    else
      EXPECT_LT(Where[I].load(), Wide.size()) << I;
  }
}

TEST(ThreadPoolTest, RunStickyRethrowsAndStaysUsable) {
  support::ThreadPool Pool(4);
  support::ParallelBatch Batch(Pool);
  EXPECT_THROW(Batch.runSticky(100,
                               [](size_t I) {
                                 if (I == 37)
                                   throw std::runtime_error("sticky 37");
                               }),
               std::runtime_error);
  std::atomic<size_t> Count{0};
  Batch.runSticky(100, [&](size_t) {
    Count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(Count.load(), 100u);
}

TEST(ThreadPoolTest, PinnedOverflowSpillsToInjectionAndStillRuns) {
  // DequeBound pinned tasks fill worker 0's deque; the rest spill to the
  // shared injection queue. Everything must still run exactly once.
  support::ThreadPool Pool(2);
  WorkerBlocker Blocker(Pool, 0);
  const size_t Total = support::ThreadPool::DequeBound + 64;
  std::atomic<size_t> Ran{0};
  for (size_t K = 0; K != Total; ++K)
    Pool.postTo(0, [&Ran] { Ran.fetch_add(1, std::memory_order_relaxed); });
  Blocker.release();
  while (!Pool.idle())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(Ran.load(), Total);
}
