//===- tests/ChecksTest.cpp - Checker verdicts and soundness fuzzing ------===//
//
// Three halves. The seeded-defect fixtures under examples/bad/ must each
// produce exactly the pinned verdict, stable code, and position, and the
// Diagnostics bridge must classify them (ERROR -> error, WARNING ->
// warning, promoted under -Werror, SAFE -> note). Hand-written programs
// pin every verdict class per domain, including SKIPPED and the
// non-converged degradation. Finally, the randomized soundness fuzz:
// plant a random assertion into a generated program, solve, check, and
// demand the verdict never contradicts a Monte-Carlo ground-truth
// estimate — for BI (dense and ADD-backed), MDP, and LEIA assertions.
//
// Set PMAF_SEED=<n> to replay the fuzz loops under a chosen seed.
//
//===----------------------------------------------------------------------===//

#include "RandomProgramGen.h"
#include "cfg/HyperGraph.h"
#include "checks/Checker.h"
#include "checks/Fuzz.h"
#include "concrete/Interpreter.h"
#include "core/Solver.h"
#include "domains/AddBiDomain.h"
#include "domains/BiDomain.h"
#include "domains/LeiaDomain.h"
#include "domains/MdpDomain.h"
#include "lang/Parser.h"
#include "support/Diagnostics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>

using namespace pmaf;
using namespace pmaf::checks;
using namespace pmaf::core;
using namespace pmaf::domains;
using namespace pmaf::lang;

namespace {

std::string readFixture(const std::string &Name) {
  std::string Path = std::string(PMAF_BAD_EXAMPLES_DIR) + "/" + Name;
  std::ifstream In(Path);
  EXPECT_TRUE(In) << "cannot open fixture " << Path;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

ChecksDb checkBi(const Program &Prog, bool Converged = true) {
  BoolStateSpace Space(Prog);
  cfg::ProgramGraph Graph = cfg::ProgramGraph::build(Prog);
  BiDomain Dom(Space);
  SolverOptions Opts;
  Opts.UseWidening = false;
  Opts.MaxUpdates = 200000;
  auto Result = solve(Graph, Dom, Opts);
  CheckerOptions COpts;
  COpts.Converged = Converged && Result.Stats.Converged;
  return checkBiSummaries(
      Space, Graph, [&](unsigned N) { return Result.Values[N]; }, COpts);
}

ChecksDb checkAddBi(const Program &Prog) {
  BoolStateSpace Space(Prog);
  cfg::ProgramGraph Graph = cfg::ProgramGraph::build(Prog);
  AddBiDomain Dom(Space);
  SolverOptions Opts;
  Opts.UseWidening = false;
  Opts.MaxUpdates = 200000;
  auto Result = solve(Graph, Dom, Opts);
  CheckerOptions COpts;
  COpts.Converged = Result.Stats.Converged;
  return checkBiSummaries(
      Space, Graph, [&](unsigned N) { return Dom.toMatrix(Result.Values[N]); },
      COpts);
}

ChecksDb checkMdpProg(const Program &Prog) {
  cfg::ProgramGraph Graph = cfg::ProgramGraph::build(Prog);
  MdpDomain Dom;
  SolverOptions Opts;
  Opts.WideningDelay = 10000;
  Opts.MaxUpdates = 200000;
  auto Result = solve(Graph, Dom, Opts);
  CheckerOptions COpts;
  COpts.Converged = Result.Stats.Converged;
  return checkMdp(Graph, Result.Values, COpts);
}

/// LEIA solve + check under a chosen numeric backend. The deterministic
/// tests run both the shipped ladder and zones; the fuzz loop sticks to
/// zones — a rare random loop program drives the ladder's polyhedra
/// escalation into multi-minute joins, while zones stays relational at
/// polynomial cost, and the soundness argument is backend-independent
/// (same reason `pmaf verify-corpus` solves its LEIA files on zones).
template <typename NumV> ChecksDb checkLeiaProg(const Program &Prog) {
  cfg::ProgramGraph Graph = cfg::ProgramGraph::build(Prog);
  LeiaDomainT<NumV> Dom(Prog);
  SolverOptions Opts;
  // Same update budget as `pmaf verify-corpus`: a non-converged solve
  // degrades verdicts to WARNING, which the soundness oracle accepts.
  Opts.MaxUpdates = 200000;
  auto Result = solve(Graph, Dom, Opts);
  CheckerOptions COpts;
  COpts.Converged = Result.Stats.Converged;
  return checkLeia(Dom, Graph, Result.Values, COpts);
}

/// The tolerance `pmaf verify-corpus` uses: a few standard errors at the
/// scale of the asserted quantity, plus a floor for float drift.
double fuzzTol(const Stmt &A, unsigned Runs) {
  double Base = 4.0 / std::sqrt(static_cast<double>(Runs));
  switch (A.assertKind()) {
  case AssertKind::Prob:
    return 0.5 * Base + 0.01;
  case AssertKind::Reward:
    return Base * (1.0 + std::fabs(A.assertBound().toDouble())) + 0.05;
  case AssertKind::Interval: {
    double Scale = std::max(std::fabs(A.assertLo().toDouble()),
                            std::fabs(A.assertHi().toDouble()));
    return Base * (1.0 + Scale) + 0.05;
  }
  }
  return 0.05;
}

//===----------------------------------------------------------------------===//
// Seeded-defect fixtures: pinned verdict, code, and position
//===----------------------------------------------------------------------===//

TEST(ChecksFixtureTest, ViolatedAssertProb) {
  auto Prog = parseProgramOrDie(readFixture("violated_assert_prob.pp"));
  ChecksDb Db = checkBi(*Prog);
  ASSERT_EQ(Db.total(), 1u);
  const CheckRecord &R = Db.records()[0];
  EXPECT_EQ(R.Kind, AssertKind::Prob);
  EXPECT_EQ(R.TheVerdict, Verdict::Error);
  EXPECT_EQ(R.Code, "assert-prob-violated");
  EXPECT_EQ(R.Loc.Line, 7u);
  EXPECT_EQ(R.Loc.Col, 3u);
  EXPECT_EQ(Db.count(Verdict::Error), 1u);

  // The Diagnostics bridge must surface it as a hard error.
  DiagnosticEngine Diags;
  reportChecks(Db, Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.renderJson().find("assert-prob-violated"),
            std::string::npos);
}

TEST(ChecksFixtureTest, UnprovableAssertReward) {
  auto Prog = parseProgramOrDie(readFixture("unprovable_assert_reward.pp"));
  ChecksDb Db = checkMdpProg(*Prog);
  ASSERT_EQ(Db.total(), 1u);
  const CheckRecord &R = Db.records()[0];
  EXPECT_EQ(R.Kind, AssertKind::Reward);
  EXPECT_EQ(R.TheVerdict, Verdict::Warning);
  EXPECT_EQ(R.Code, "assert-reward-unproved");
  EXPECT_EQ(R.Loc.Line, 6u);
  EXPECT_EQ(R.Loc.Col, 3u);

  // Plain run: a warning, not an error. Under -Werror: promoted.
  DiagnosticEngine Plain;
  reportChecks(Db, Plain);
  EXPECT_FALSE(Plain.hasErrors());
  EXPECT_EQ(Plain.warningCount(), 1u);
  DiagnosticEngine Strict;
  Strict.setWarningsAsErrors(true);
  reportChecks(Db, Strict);
  EXPECT_TRUE(Strict.hasErrors());
}

//===----------------------------------------------------------------------===//
// Verdict classes per domain
//===----------------------------------------------------------------------===//

TEST(CheckerTest, BiSafeAndViolated) {
  auto Prog = parseProgramOrDie(R"(
    bool b;
    proc main() {
      assert_prob(b) >= 1/2;
      b ~ bernoulli(3/4);
    }
  )");
  ChecksDb Db = checkBi(*Prog);
  ASSERT_EQ(Db.total(), 1u);
  EXPECT_EQ(Db.records()[0].TheVerdict, Verdict::Safe);
  EXPECT_EQ(Db.records()[0].Code, "assert-prob-safe");

  auto Bad = parseProgramOrDie(R"(
    bool b;
    proc main() {
      assert_prob(b) <= 1/4;
      b ~ bernoulli(3/4);
    }
  )");
  ChecksDb BadDb = checkBi(*Bad);
  ASSERT_EQ(BadDb.total(), 1u);
  EXPECT_EQ(BadDb.records()[0].TheVerdict, Verdict::Error);
  EXPECT_EQ(BadDb.records()[0].Code, "assert-prob-violated");
}

TEST(CheckerTest, BiObserveMakesBoundUnprovable) {
  // Conditioning renders the kernel sub-stochastic: the surviving mass
  // with b true is 3/4 * 1/2 = 0.375 < 1/2, but the complement upper
  // bound 1 - 1/4 * 1/2 = 0.875 >= 1/2 — neither proved nor refuted.
  auto Prog = parseProgramOrDie(R"(
    bool b, c;
    proc main() {
      assert_prob(b) >= 1/2;
      b ~ bernoulli(3/4);
      c ~ bernoulli(1/2);
      observe(c);
    }
  )");
  ChecksDb Db = checkBi(*Prog);
  ASSERT_EQ(Db.total(), 1u);
  EXPECT_EQ(Db.records()[0].TheVerdict, Verdict::Warning);
  EXPECT_EQ(Db.records()[0].Code, "assert-prob-unproved");
}

TEST(CheckerTest, MdpUpperBoundSemantics) {
  // <= is provable from the upper bound...
  auto Safe = parseProgramOrDie(
      "proc main() { assert_reward <= 3; reward(2); }");
  ChecksDb SafeDb = checkMdpProg(*Safe);
  ASSERT_EQ(SafeDb.total(), 1u);
  EXPECT_EQ(SafeDb.records()[0].TheVerdict, Verdict::Safe);
  EXPECT_EQ(SafeDb.records()[0].Code, "assert-reward-safe");

  // ...and >= is refutable from it, but never provable.
  auto Bad = parseProgramOrDie(
      "proc main() { assert_reward >= 3; reward(2); }");
  ChecksDb BadDb = checkMdpProg(*Bad);
  ASSERT_EQ(BadDb.total(), 1u);
  EXPECT_EQ(BadDb.records()[0].TheVerdict, Verdict::Error);
  EXPECT_EQ(BadDb.records()[0].Code, "assert-reward-violated");
}

TEST(CheckerTest, LeiaIntervalContainmentAndDisjointness) {
  auto Safe = parseProgramOrDie(R"(
    real x;
    proc main() {
      assert_interval(x, 0, 1);
      x := 1/2;
    }
  )");
  auto Bad = parseProgramOrDie(R"(
    real x;
    proc main() {
      assert_interval(x, 2, 3);
      x := 1/2;
    }
  )");
  // Same verdicts under the shipped ladder and the zones backend.
  ChecksDb SafeDb = checkLeiaProg<poly::LadderValue>(*Safe);
  ASSERT_EQ(SafeDb.total(), 1u);
  EXPECT_EQ(SafeDb.records()[0].TheVerdict, Verdict::Safe);
  EXPECT_EQ(SafeDb.records()[0].Code, "assert-interval-safe");
  ChecksDb SafeZ = checkLeiaProg<poly::Zones>(*Safe);
  ASSERT_EQ(SafeZ.total(), 1u);
  EXPECT_EQ(SafeZ.records()[0].Code, "assert-interval-safe");

  ChecksDb BadDb = checkLeiaProg<poly::LadderValue>(*Bad);
  ASSERT_EQ(BadDb.total(), 1u);
  EXPECT_EQ(BadDb.records()[0].TheVerdict, Verdict::Error);
  EXPECT_EQ(BadDb.records()[0].Code, "assert-interval-violated");
  ChecksDb BadZ = checkLeiaProg<poly::Zones>(*Bad);
  ASSERT_EQ(BadZ.total(), 1u);
  EXPECT_EQ(BadZ.records()[0].Code, "assert-interval-violated");

  // The non-relational interval backend tops out at the exit identity
  // (x' = x is not box-expressible), so it degrades both to unproved —
  // sound, never decisive.
  EXPECT_EQ(checkLeiaProg<poly::Intervals>(*Safe).records()[0].Code,
            "assert-interval-unproved");
  EXPECT_EQ(checkLeiaProg<poly::Intervals>(*Bad).records()[0].Code,
            "assert-interval-unproved");
}

TEST(CheckerTest, DivergenceMakesExpectationExactlyZero) {
  // Almost-sure divergence leaves zero terminating mass, so the
  // sub-probability expectation of any objective is exactly 0 — an
  // asserted interval excluding 0 is provably violated, one containing
  // 0 provably holds. (Regression: the corpus fuzzer caught the old
  // "bottom slice is vacuously SAFE" reading as a soundness hole.)
  auto Bad = parseProgramOrDie(R"(
    real x;
    proc main() {
      assert_interval(x, 3, 3);
      x := 7/2;
      while (x >= 0) { x := 1; }
    }
  )");
  ChecksDb BadDb = checkLeiaProg<poly::Zones>(*Bad);
  ASSERT_EQ(BadDb.total(), 1u);
  EXPECT_EQ(BadDb.records()[0].TheVerdict, Verdict::Error);
  EXPECT_EQ(BadDb.records()[0].Code, "assert-interval-violated");

  auto Ok = parseProgramOrDie(R"(
    real x;
    proc main() {
      assert_interval(x, 0, 1);
      x := 7/2;
      while (x >= 0) { x := 1; }
    }
  )");
  ChecksDb OkDb = checkLeiaProg<poly::Zones>(*Ok);
  ASSERT_EQ(OkDb.total(), 1u);
  EXPECT_EQ(OkDb.records()[0].TheVerdict, Verdict::Safe);
  EXPECT_EQ(OkDb.records()[0].Code, "assert-interval-safe");
}

TEST(CheckerTest, MismatchedKindIsSkippedNotDropped) {
  auto Prog = parseProgramOrDie(
      "bool b; proc main() { assert_reward >= 1; b := true; }");
  ChecksDb Db = checkBi(*Prog);
  ASSERT_EQ(Db.total(), 1u);
  EXPECT_EQ(Db.records()[0].TheVerdict, Verdict::Skipped);
  EXPECT_EQ(Db.records()[0].Code, "assert-skipped");
}

TEST(CheckerTest, NonConvergedSolveDegradesToWarning) {
  auto Prog = parseProgramOrDie(R"(
    bool b;
    proc main() {
      assert_prob(b) >= 1/2;
      b ~ bernoulli(3/4);
    }
  )");
  ChecksDb Db = checkBi(*Prog, /*Converged=*/false);
  ASSERT_EQ(Db.total(), 1u);
  EXPECT_EQ(Db.records()[0].TheVerdict, Verdict::Warning);
  EXPECT_EQ(Db.records()[0].Code, "assert-prob-unproved");
}

TEST(CheckerTest, SafeVerdictsAreNotesNeverExitRelevant) {
  auto Prog = parseProgramOrDie(R"(
    bool b;
    proc main() {
      assert_prob(b) >= 1/2;
      b ~ bernoulli(3/4);
    }
  )");
  ChecksDb Db = checkBi(*Prog);
  DiagnosticEngine Strict;
  Strict.setWarningsAsErrors(true);
  reportChecks(Db, Strict);
  EXPECT_FALSE(Strict.hasErrors());
  EXPECT_EQ(Strict.warningCount(), 0u);
  ASSERT_EQ(Strict.diagnostics().size(), 1u);
  EXPECT_EQ(Strict.diagnostics()[0].Sev, Severity::Note);
}

TEST(CheckerTest, DbMergeTagAndJson) {
  auto Prog = parseProgramOrDie(R"(
    bool b;
    proc main() {
      assert_prob(b) >= 1/2;
      b ~ bernoulli(3/4);
    }
  )");
  ChecksDb A = checkBi(*Prog);
  A.tagFile("a.pp");
  ChecksDb B = checkBi(*Prog);
  B.tagFile("b.pp");
  ChecksDb Merged;
  Merged.merge(A);
  Merged.merge(B);
  EXPECT_EQ(Merged.total(), 2u);
  EXPECT_EQ(Merged.count(Verdict::Safe), 2u);
  EXPECT_EQ(Merged.codeCounts().at("assert-prob-safe"), 2u);
  EXPECT_EQ(Merged.records()[0].File, "a.pp");
  EXPECT_EQ(Merged.records()[1].File, "b.pp");
  std::string Json = Merged.toJson();
  EXPECT_NE(Json.find("\"total\": 2"), std::string::npos) << Json;
  EXPECT_NE(Json.find("assert-prob-safe"), std::string::npos) << Json;
  EXPECT_NE(Json.find("a.pp"), std::string::npos) << Json;
}

//===----------------------------------------------------------------------===//
// Backend agreement: the ADD-backed BI checker must match the dense one
//===----------------------------------------------------------------------===//

TEST(CheckerTest, DenseAndAddBackendsAgree) {
  Rng R(concrete::Interpreter::seedFromEnv(0xC0FFEE));
  for (int Round = 0; Round != 20; ++Round) {
    auto Prog = testgen::randomBoolProgram(R, 3, 4);
    Stmt::Ptr A = fuzz::randomProbAssertion(R, *Prog);
    fuzz::plantAssertion(*Prog, std::move(A),
                         fuzz::randomInitPrologue(R, *Prog));
    ChecksDb Dense = checkBi(*Prog);
    ChecksDb Add = checkAddBi(*Prog);
    ASSERT_EQ(Dense.total(), Add.total());
    for (unsigned I = 0; I != Dense.total(); ++I)
      EXPECT_EQ(Dense.records()[I].Code, Add.records()[I].Code)
          << "round " << Round << "\n"
          << toString(*Prog);
  }
}

//===----------------------------------------------------------------------===//
// Soundness fuzz: verdicts must never contradict concrete semantics
//===----------------------------------------------------------------------===//

TEST(SoundnessFuzzTest, ProbAssertionsBi) {
  uint64_t Seed = concrete::Interpreter::seedFromEnv(0xB1);
  Rng R(Seed);
  const unsigned Runs = 2000;
  for (int Round = 0; Round != 30; ++Round) {
    auto Prog = testgen::randomBoolProgram(R, 3, 4);
    Stmt::Ptr A = fuzz::randomProbAssertion(R, *Prog);
    const Stmt *Planted = A.get();
    fuzz::plantAssertion(*Prog, std::move(A),
                         fuzz::randomInitPrologue(R, *Prog));
    ChecksDb Db = checkBi(*Prog);
    ASSERT_EQ(Db.total(), 1u);
    fuzz::GroundTruth GT =
        fuzz::estimateGroundTruth(*Prog, *Planted, Seed + Round, Runs);
    EXPECT_EQ(fuzz::soundnessViolation(*Planted, Db.records()[0].TheVerdict,
                                       GT, fuzzTol(*Planted, Runs)),
              "")
        << "round " << Round << " (" << Db.records()[0].Code << ")\n"
        << toString(*Prog);
  }
}

TEST(SoundnessFuzzTest, RewardAssertionsMdp) {
  uint64_t Seed = concrete::Interpreter::seedFromEnv(0x3D9);
  Rng R(Seed);
  const unsigned Runs = 2000;
  for (int Round = 0; Round != 30; ++Round) {
    testgen::BoolGenConfig C;
    C.NumVars = 2;
    C.NumStmts = 3;
    C.ObserveWeight = 0; // MDP semantics has no conditioning.
    auto Prog = testgen::randomBoolProgram(R, C);
    fuzz::sprinkleRewards(R, *Prog, 1 + R.below(3));
    Stmt::Ptr A = fuzz::randomRewardAssertion(R);
    const Stmt *Planted = A.get();
    fuzz::plantAssertion(*Prog, std::move(A),
                         fuzz::randomInitPrologue(R, *Prog));
    ChecksDb Db = checkMdpProg(*Prog);
    ASSERT_EQ(Db.total(), 1u);
    fuzz::GroundTruth GT =
        fuzz::estimateGroundTruth(*Prog, *Planted, Seed + Round, Runs);
    EXPECT_EQ(fuzz::soundnessViolation(*Planted, Db.records()[0].TheVerdict,
                                       GT, fuzzTol(*Planted, Runs)),
              "")
        << "round " << Round << " (" << Db.records()[0].Code << ")\n"
        << toString(*Prog);
  }
}

TEST(SoundnessFuzzTest, IntervalAssertionsLeia) {
  uint64_t Seed = concrete::Interpreter::seedFromEnv(0x1E1A);
  Rng R(Seed);
  const unsigned Runs = 2000;
  for (int Round = 0; Round != 20; ++Round) {
    auto Prog = testgen::randomRealProgram(R, 2, 3);
    Stmt::Ptr A = fuzz::randomIntervalAssertion(R, *Prog);
    const Stmt *Planted = A.get();
    fuzz::plantAssertion(*Prog, std::move(A),
                         fuzz::randomInitPrologue(R, *Prog));
    ChecksDb Db = checkLeiaProg<poly::Zones>(*Prog);
    ASSERT_EQ(Db.total(), 1u);
    fuzz::GroundTruth GT =
        fuzz::estimateGroundTruth(*Prog, *Planted, Seed + Round, Runs);
    EXPECT_EQ(fuzz::soundnessViolation(*Planted, Db.records()[0].TheVerdict,
                                       GT, fuzzTol(*Planted, Runs)),
              "")
        << "round " << Round << " (" << Db.records()[0].Code << ")\n"
        << toString(*Prog);
  }
}

} // namespace
