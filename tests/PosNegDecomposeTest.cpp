//===- tests/PosNegDecomposeTest.cpp - Positive-negative decomposition ----===//
//
// Validates the §6.2 decomposition transformation: semantic equivalence
// (x == x__p - x__n along every execution, checked by co-simulating the
// original and decomposed programs), preservation of nonnegativity, and
// end-to-end use with LEIA on signed-variable programs.
//
//===----------------------------------------------------------------------===//

#include "cfg/HyperGraph.h"
#include "concrete/Interpreter.h"
#include "core/Solver.h"
#include "domains/LeiaDomain.h"
#include "lang/Parser.h"
#include "lang/PosNegDecompose.h"

#include <gtest/gtest.h>

using namespace pmaf;
using namespace pmaf::lang;

namespace {

/// Runs both programs on the same seed and compares x against
/// x__p - x__n for every original variable; also checks nonnegativity of
/// every decomposed component.
void expectCoSimulation(const char *Source, unsigned Runs = 2000) {
  auto Prog = parseProgramOrDie(Source);
  DecomposeResult Decomposed = decomposePosNeg(*Prog);
  ASSERT_TRUE(Decomposed) << Decomposed.Error;
  unsigned N = static_cast<unsigned>(Prog->Vars.size());
  for (unsigned Seed = 1; Seed <= Runs; ++Seed) {
    concrete::Interpreter Orig(*Prog, Seed);
    concrete::Interpreter Deco(*Decomposed.Prog, Seed);
    auto A = Orig.run(0, std::vector<double>(N, 0.0), 20000);
    auto B = Deco.run(
        0, std::vector<double>(Decomposed.Prog->Vars.size(), 0.0), 80000);
    ASSERT_EQ(A.terminated(), B.terminated()) << Source;
    if (!A.terminated())
      continue;
    for (unsigned V = 0; V != N; ++V) {
      EXPECT_NEAR(A.State[V], B.State[2 * V] - B.State[2 * V + 1], 1e-9)
          << Prog->Vars[V].Name << " at seed " << Seed << "\n"
          << toString(*Decomposed.Prog);
      EXPECT_GE(B.State[2 * V], -1e-9);
      EXPECT_GE(B.State[2 * V + 1], -1e-9);
    }
  }
}

} // namespace

TEST(PosNegDecomposeTest, LinearAssignments) {
  expectCoSimulation(R"(
    real x, y;
    proc main() {
      x := x + 1;
      y := 2 * x - 3;
      x := y - x;
      x := 0 - x;
    }
  )");
}

TEST(PosNegDecomposeTest, SelfSwapNeedsStaging) {
  // x := -x must read the *old* components; the staged assignment
  // guarantees it.
  expectCoSimulation(R"(
    real x;
    proc main() {
      x := 5;
      x := 0 - x;
      x := 0 - x;
    }
  )");
}

TEST(PosNegDecomposeTest, SamplingAndBranching) {
  expectCoSimulation(R"(
    real x, step;
    proc main() {
      step ~ uniform(0 - 1, 1);
      x := x + step;
      if prob(1/2) { x := x - 1; } else { x := x + 1; }
      while (x >= 3) { x := x - 2; }
    }
  )");
}

TEST(PosNegDecomposeTest, VariableBoundsSampling) {
  // uniform(x - 1, x + 1) becomes a nonnegative-span sample plus a
  // linear assignment.
  expectCoSimulation(R"(
    real x;
    proc main() {
      x := 2;
      x ~ uniform(x - 1, x + 1);
      x ~ uniform(x - 1, x + 1);
    }
  )");
}

TEST(PosNegDecomposeTest, DiscreteShift) {
  expectCoSimulation(R"(
    real d;
    proc main() {
      d ~ discrete(0 - 2: 1/4, 0: 1/4, 3: 1/2);
    }
  )");
}

TEST(PosNegDecomposeTest, CallsAndObserve) {
  expectCoSimulation(R"(
    real x;
    proc bump() { x := x - 1; }
    proc main() {
      x := 3;
      bump();
      bump();
      observe(x >= 1);
    }
  )");
}

TEST(PosNegDecomposeTest, RejectsNonRealPrograms) {
  auto Prog = parseProgramOrDie("bool b; proc main() { b := true; }");
  DecomposeResult R = decomposePosNeg(*Prog);
  EXPECT_FALSE(R);
  EXPECT_NE(R.Error.find("real-valued"), std::string::npos);
}

TEST(PosNegDecomposeTest, RejectsGaussian) {
  auto Prog = parseProgramOrDie(
      "real g; proc main() { g ~ gaussian(0, 1); }");
  DecomposeResult R = decomposePosNeg(*Prog);
  EXPECT_FALSE(R);
  EXPECT_NE(R.Error.find("unbounded"), std::string::npos);
}

TEST(PosNegDecomposeTest, LeiaOnSignedRandomWalk) {
  // The paper's use case: LEIA on a signed program after decomposition.
  // One lazy ±1 step has E[x'] = x, i.e. E[x__p' - x__n'] = x__p - x__n.
  auto Prog = parseProgramOrDie(R"(
    real x;
    proc main() {
      x ~ uniform(x - 1, x + 1);
    }
  )");
  DecomposeResult Decomposed = decomposePosNeg(*Prog);
  ASSERT_TRUE(Decomposed) << Decomposed.Error;
  cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Decomposed.Prog);
  domains::LeiaDomain Dom(*Decomposed.Prog);
  auto Result = core::solve(Graph, Dom);
  unsigned Entry = Graph.proc(0).Entry;
  // Objective E[x__p' - x__n'] from pre-state x = 5 - 2 = 3.
  std::vector<Rational> Objective(Decomposed.Prog->Vars.size(),
                                  Rational(0));
  Objective[0] = Rational(1);
  Objective[1] = Rational(-1);
  std::vector<Rational> Pre(Decomposed.Prog->Vars.size(), Rational(0));
  Pre[0] = Rational(5);
  Pre[1] = Rational(2);
  auto [Lo, Hi] = Dom.expectationBounds(Result.Values[Entry], Objective,
                                        Pre);
  ASSERT_TRUE(Lo && Hi);
  EXPECT_EQ(*Lo, Rational(3));
  EXPECT_EQ(*Hi, Rational(3));
}

TEST(PosNegDecomposeTest, PaperBiasedCoinShape) {
  // The biased-coin benchmark in its *signed* form (as in [49]):
  // x moves ±1/2 on a fair coin. After decomposition LEIA derives the
  // paper's x - 1/2 <= E[x'] <= x + 1/2.
  auto Prog = parseProgramOrDie(R"(
    real x, y;
    proc main() {
      y ~ bernoulli(1/2);
      if (y >= 1) { x := x + 1/2; } else { x := x - 1/2; }
    }
  )");
  DecomposeResult Decomposed = decomposePosNeg(*Prog);
  ASSERT_TRUE(Decomposed) << Decomposed.Error;
  cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Decomposed.Prog);
  domains::LeiaDomain Dom(*Decomposed.Prog);
  auto Result = core::solve(Graph, Dom);
  unsigned Entry = Graph.proc(0).Entry;
  std::vector<Rational> Objective(Decomposed.Prog->Vars.size(),
                                  Rational(0));
  Objective[0] = Rational(1);
  Objective[1] = Rational(-1);
  std::vector<Rational> Pre(Decomposed.Prog->Vars.size(), Rational(0));
  Pre[0] = Rational(4); // x = 4
  auto [Lo, Hi] = Dom.expectationBounds(Result.Values[Entry], Objective,
                                        Pre);
  ASSERT_TRUE(Lo && Hi);
  EXPECT_GE(Lo->toDouble(), 4.0 - 0.5 - 1e-9);
  EXPECT_LE(Hi->toDouble(), 4.0 + 0.5 + 1e-9);
}
