//===- tests/LangTest.cpp - Lexer and parser unit tests -------------------===//

#include "lang/Lexer.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

#include <iterator>

using namespace pmaf;
using namespace pmaf::lang;

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(LexerTest, PunctuationAndOperators) {
  auto Tokens = tokenize("( ) { } ; , : := ~ ! && || == != <= >= < > + - * /");
  Token::Kind Expected[] = {
      Token::Kind::LParen, Token::Kind::RParen,    Token::Kind::LBrace,
      Token::Kind::RBrace, Token::Kind::Semi,      Token::Kind::Comma,
      Token::Kind::Colon,  Token::Kind::Assign,    Token::Kind::Tilde,
      Token::Kind::Bang,   Token::Kind::AndAnd,    Token::Kind::OrOr,
      Token::Kind::EqEq,   Token::Kind::NotEq,     Token::Kind::LessEq,
      Token::Kind::GreaterEq, Token::Kind::Less,   Token::Kind::Greater,
      Token::Kind::Plus,   Token::Kind::Minus,     Token::Kind::Star,
      Token::Kind::Slash,  Token::Kind::Eof};
  ASSERT_EQ(Tokens.size(), std::size(Expected));
  for (size_t I = 0; I != Tokens.size(); ++I)
    EXPECT_EQ(Tokens[I].TheKind, Expected[I]) << "token " << I;
}

TEST(LexerTest, NumbersAndIdents) {
  auto Tokens = tokenize("x1 12 0.75 1e-3 2.5e2 _tmp");
  ASSERT_EQ(Tokens.size(), 7u);
  EXPECT_EQ(Tokens[0].TheKind, Token::Kind::Ident);
  EXPECT_EQ(Tokens[0].Text, "x1");
  EXPECT_EQ(Tokens[1].Text, "12");
  EXPECT_EQ(Tokens[2].Text, "0.75");
  EXPECT_EQ(Tokens[3].Text, "1e-3");
  EXPECT_EQ(Tokens[4].Text, "2.5e2");
  EXPECT_EQ(Tokens[5].Text, "_tmp");
}

TEST(LexerTest, CommentsAndPositions) {
  auto Tokens = tokenize("x // comment\n# another\n  y");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Text, "x");
  EXPECT_EQ(Tokens[0].Line, 1u);
  EXPECT_EQ(Tokens[1].Text, "y");
  EXPECT_EQ(Tokens[1].Line, 3u);
  EXPECT_EQ(Tokens[1].Col, 3u);
}

TEST(LexerTest, ReportsStrayCharacters) {
  auto Tokens = tokenize("x = y");
  // '=' alone is an error (the language uses ':=' and '==').
  bool SawError = false;
  for (const Token &T : Tokens)
    SawError |= T.TheKind == Token::Kind::Error;
  EXPECT_TRUE(SawError);
}

//===----------------------------------------------------------------------===//
// Parser: positive cases
//===----------------------------------------------------------------------===//

TEST(ParserTest, Figure1aBooleanProgram) {
  ParseResult R = parseProgram(R"(
    bool b1, b2;
    proc main() {
      b1 ~ bernoulli(0.5);
      b2 ~ bernoulli(0.5);
      while (!b1 && !b2) {
        b1 ~ bernoulli(0.5);
        b2 ~ bernoulli(0.5);
      }
    }
  )");
  ASSERT_TRUE(R) << R.Error;
  EXPECT_EQ(R.Prog->Vars.size(), 2u);
  EXPECT_EQ(R.Prog->Procs.size(), 1u);
  EXPECT_EQ(R.Prog->countCalls(), 0u);
}

TEST(ParserTest, Figure1bArithmeticProgram) {
  ParseResult R = parseProgram(R"(
    real x, y, z;
    proc main() {
      while prob(3/4) {
        z ~ uniform(0, 2);
        if star { x := x + z; } else { y := y + z; }
      }
    }
  )");
  ASSERT_TRUE(R) << R.Error;
  const Stmt &Body = *R.Prog->Procs[0].Body;
  ASSERT_EQ(Body.kind(), Stmt::Kind::Block);
  const Stmt &Loop = *Body.stmts()[0];
  ASSERT_EQ(Loop.kind(), Stmt::Kind::While);
  EXPECT_EQ(Loop.guard().TheKind, Guard::Kind::Prob);
  EXPECT_EQ(Loop.guard().Prob, Rational(3, 4));
}

TEST(ParserTest, Example34GeometricWithBreakContinue) {
  ParseResult R = parseProgram(R"(
    real n;
    proc main() {
      n := 0;
      while prob(0.9) {
        n := n + 1;
        if (n >= 10) { break; } else { continue; }
      }
    }
  )");
  ASSERT_TRUE(R) << R.Error;
}

TEST(ParserTest, ProceduresAndCalls) {
  ParseResult R = parseProgram(R"(
    real x;
    proc helper() { x := x + 1; }
    proc main() {
      helper();
      if prob(0.5) { main(); }
    }
  )");
  ASSERT_TRUE(R) << R.Error;
  EXPECT_EQ(R.Prog->countCalls(), 2u);
  // Calls are resolved to procedure indices.
  const Stmt &Body = *R.Prog->Procs[1].Body;
  EXPECT_EQ(Body.stmts()[0]->calleeIndex(), 0u);
}

TEST(ParserTest, ObserveRewardSkipReturn) {
  ParseResult R = parseProgram(R"(
    bool b;
    proc main() {
      skip;
      observe(b);
      reward(3/2);
      return;
    }
  )");
  ASSERT_TRUE(R) << R.Error;
  const auto &Stmts = R.Prog->Procs[0].Body->stmts();
  ASSERT_EQ(Stmts.size(), 4u);
  EXPECT_EQ(Stmts[0]->kind(), Stmt::Kind::Skip);
  EXPECT_EQ(Stmts[1]->kind(), Stmt::Kind::Observe);
  EXPECT_EQ(Stmts[2]->kind(), Stmt::Kind::Reward);
  EXPECT_EQ(Stmts[2]->reward(), Rational(3, 2));
  EXPECT_EQ(Stmts[3]->kind(), Stmt::Kind::Return);
}

TEST(ParserTest, ConditionGrammar) {
  ParseResult R = parseProgram(R"(
    real x, y;
    bool b;
    proc main() {
      if (x + 1 <= 2 * y) { skip; }
      if ((x <= 1) && !(y >= 2) || b) { skip; }
      if ((x + 1) <= y) { skip; }
      while (x == y) { x := x + 1; }
    }
  )");
  ASSERT_TRUE(R) << R.Error;
}

TEST(ParserTest, ElseIfChains) {
  ParseResult R = parseProgram(R"(
    real x;
    proc main() {
      if (x <= 1) { x := 1; }
      else if (x <= 2) { x := 2; }
      else { x := 3; }
    }
  )");
  ASSERT_TRUE(R) << R.Error;
}

TEST(ParserTest, DiscreteDistribution) {
  ParseResult R = parseProgram(R"(
    real d;
    proc main() {
      d ~ discrete(1: 1/6, 2: 1/6, 3: 1/6, 4: 1/6, 5: 1/6, 6: 1/6);
    }
  )");
  ASSERT_TRUE(R) << R.Error;
  const Stmt &S = *R.Prog->Procs[0].Body->stmts()[0];
  ASSERT_EQ(S.kind(), Stmt::Kind::Sample);
  EXPECT_EQ(S.dist().Params.size(), 6u);
  EXPECT_EQ(S.dist().Weights[0], Rational(1, 6));
}

TEST(ParserTest, PrettyPrintRoundTrip) {
  const char *Source = R"(
    real x, y, z;
    proc main() {
      while prob(3/4) {
        z ~ uniform(0, 2);
        if star { x := x + z; } else { y := y + z; }
      }
    }
  )";
  ParseResult First = parseProgram(Source);
  ASSERT_TRUE(First) << First.Error;
  std::string Printed = toString(*First.Prog);
  ParseResult Second = parseProgram(Printed);
  ASSERT_TRUE(Second) << Second.Error << "\nin:\n" << Printed;
  EXPECT_EQ(Printed, toString(*Second.Prog));
}

//===----------------------------------------------------------------------===//
// Parser: diagnostics
//===----------------------------------------------------------------------===//

TEST(ParserTest, RejectsUndeclaredVariable) {
  ParseResult R = parseProgram("proc main() { x := 1; }");
  EXPECT_FALSE(R);
  EXPECT_NE(R.Error.find("undeclared"), std::string::npos) << R.Error;
}

TEST(ParserTest, RejectsUnknownProcedure) {
  ParseResult R = parseProgram("proc main() { nope(); }");
  EXPECT_FALSE(R);
  EXPECT_NE(R.Error.find("undefined procedure"), std::string::npos)
      << R.Error;
}

TEST(ParserTest, RejectsBreakOutsideLoop) {
  ParseResult R = parseProgram("proc main() { break; }");
  EXPECT_FALSE(R);
  EXPECT_NE(R.Error.find("break"), std::string::npos) << R.Error;
}

TEST(ParserTest, RejectsBadProbability) {
  ParseResult R = parseProgram("proc main() { if prob(1.5) { skip; } }");
  EXPECT_FALSE(R);
  EXPECT_NE(R.Error.find("[0, 1]"), std::string::npos) << R.Error;
}

TEST(ParserTest, RejectsRedeclaration) {
  ParseResult R = parseProgram("bool b; real b; proc main() { skip; }");
  EXPECT_FALSE(R);
  EXPECT_NE(R.Error.find("redeclaration"), std::string::npos) << R.Error;
}

TEST(ParserTest, RejectsEmptyProgram) {
  ParseResult R = parseProgram("bool b;");
  EXPECT_FALSE(R);
}

TEST(ParserTest, ErrorsCarryPositions) {
  ParseResult R = parseProgram("proc main() {\n  x := 1;\n}");
  ASSERT_FALSE(R);
  EXPECT_EQ(R.Error.substr(0, 2), "2:");
}
