//===- tests/SchedulerEnumerationTest.cpp - Exact demonic validation ------===//
//
// Exact counterpart of SchedulerSoundnessTest: every nondeterministic
// choice site of a program is resolved to a constant branch (prob(1) /
// prob(0)), all 2^k positional schedulers are enumerated, and each
// resolved program — now nondeterminism-free, hence *exactly* analyzable
// by BI — yields a posterior matrix. Thm 5.2's under-abstraction then
// demands: the BI summary of the original program is a pointwise lower
// bound on the summary of every resolved program. No sampling error
// anywhere.
//
//===----------------------------------------------------------------------===//

#include "baselines/PolySystem.h"
#include "benchmarks/Programs.h"
#include "cfg/HyperGraph.h"
#include "core/Solver.h"
#include "domains/BiDomain.h"
#include "domains/MdpDomain.h"
#include "lang/Parser.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace pmaf;
using namespace pmaf::core;
using namespace pmaf::domains;
using namespace pmaf::lang;

namespace {

/// Clones a statement, resolving each ndet guard (in occurrence order) to
/// prob(1) or prob(0) according to \p Choices at \p NextSite.
Stmt::Ptr resolveStmt(const Stmt &S, const std::vector<bool> &Choices,
                      size_t &NextSite) {
  switch (S.kind()) {
  case Stmt::Kind::Skip:
    return Stmt::makeSkip();
  case Stmt::Kind::Assign:
    return Stmt::makeAssign(S.varIndex(), S.value().clone());
  case Stmt::Kind::Sample:
    return Stmt::makeSample(S.varIndex(), S.dist().clone());
  case Stmt::Kind::Observe:
    return Stmt::makeObserve(S.observed().clone());
  case Stmt::Kind::Reward:
    return Stmt::makeReward(S.reward());
  case Stmt::Kind::Assert:
    // Assertions are the identity kernel; scheduler enumeration can drop
    // them.
    return Stmt::makeSkip();
  case Stmt::Kind::Break:
    return Stmt::makeBreak();
  case Stmt::Kind::Continue:
    return Stmt::makeContinue();
  case Stmt::Kind::Return:
    return Stmt::makeReturn();
  case Stmt::Kind::Call: {
    Stmt::Ptr Out = Stmt::makeCall(S.callee());
    Out->setCalleeIndex(S.calleeIndex());
    return Out;
  }
  case Stmt::Kind::Block: {
    std::vector<Stmt::Ptr> Out;
    for (const Stmt::Ptr &Child : S.stmts())
      Out.push_back(resolveStmt(*Child, Choices, NextSite));
    return Stmt::makeBlock(std::move(Out));
  }
  case Stmt::Kind::If:
  case Stmt::Kind::While: {
    Guard G = S.guard().clone();
    if (G.TheKind == Guard::Kind::Ndet) {
      G.TheKind = Guard::Kind::Prob;
      G.Prob = Choices[NextSite++] ? Rational(1) : Rational(0);
    }
    if (S.kind() == Stmt::Kind::While)
      return Stmt::makeWhile(std::move(G),
                             resolveStmt(S.body(), Choices, NextSite));
    Stmt::Ptr Then = resolveStmt(S.thenStmt(), Choices, NextSite);
    Stmt::Ptr Else = S.elseStmt()
                         ? resolveStmt(*S.elseStmt(), Choices, NextSite)
                         : nullptr;
    return Stmt::makeIf(std::move(G), std::move(Then), std::move(Else));
  }
  }
  assert(false && "unknown statement kind");
  return Stmt::makeSkip();
}

size_t countNdetSites(const Stmt &S) {
  size_t Count = 0;
  switch (S.kind()) {
  case Stmt::Kind::Block:
    for (const Stmt::Ptr &Child : S.stmts())
      Count += countNdetSites(*Child);
    return Count;
  case Stmt::Kind::If:
    Count = S.guard().TheKind == Guard::Kind::Ndet ? 1 : 0;
    Count += countNdetSites(S.thenStmt());
    if (S.elseStmt())
      Count += countNdetSites(*S.elseStmt());
    return Count;
  case Stmt::Kind::While:
    return (S.guard().TheKind == Guard::Kind::Ndet ? 1 : 0) +
           countNdetSites(S.body());
  default:
    return 0;
  }
}

Matrix analyzeBi(const Program &Prog) {
  BoolStateSpace Space(Prog);
  cfg::ProgramGraph Graph = cfg::ProgramGraph::build(Prog);
  BiDomain Dom(Space);
  SolverOptions Opts;
  Opts.UseWidening = false;
  auto Result = solve(Graph, Dom, Opts);
  return Result.Values[Graph.proc(Prog.findProc("main")).Entry];
}

/// Enumerates all positional schedulers and checks the demonic lower
/// bound entrywise against each resolved (deterministic-scheduler)
/// summary.
void expectExactLowerBound(const char *Source) {
  auto Prog = parseProgramOrDie(Source);
  Matrix Bound = analyzeBi(*Prog);

  size_t Sites = 0;
  for (const Procedure &Proc : Prog->Procs)
    Sites += countNdetSites(*Proc.Body);
  ASSERT_LE(Sites, 12u) << "too many sites to enumerate";

  bool SomeSchedulerTight = false;
  for (size_t Mask = 0; Mask != (size_t(1) << Sites); ++Mask) {
    std::vector<bool> Choices(Sites);
    for (size_t B = 0; B != Sites; ++B)
      Choices[B] = (Mask >> B) & 1;
    Program Resolved;
    Resolved.Vars = Prog->Vars;
    size_t NextSite = 0;
    for (const Procedure &Proc : Prog->Procs)
      Resolved.Procs.push_back(Procedure{
          Proc.Name, resolveStmt(*Proc.Body, Choices, NextSite), {}});
    ASSERT_EQ(NextSite, Sites);
    Matrix ResolvedSummary = analyzeBi(Resolved);
    EXPECT_TRUE(Bound.leqAll(ResolvedSummary, 1e-7))
        << "scheduler mask " << Mask << "\n"
        << toString(*Prog);
    SomeSchedulerTight |= Bound.maxAbsDiff(ResolvedSummary) <= 1e-6;
  }
  (void)SomeSchedulerTight;
}

} // namespace

TEST(SchedulerEnumerationTest, SingleChoice) {
  expectExactLowerBound(R"(
    bool a, b;
    proc main() {
      a ~ bernoulli(0.5);
      if star { b := a; } else { b := true; }
    }
  )");
}

TEST(SchedulerEnumerationTest, NestedChoices) {
  expectExactLowerBound(R"(
    bool a, b;
    proc main() {
      if star {
        a ~ bernoulli(0.25);
        if star { b := a; } else { b ~ bernoulli(0.75); }
      } else {
        a := true;
      }
    }
  )");
}

TEST(SchedulerEnumerationTest, NdetLoopGuard) {
  expectExactLowerBound(R"(
    bool a;
    proc main() {
      while star {
        a ~ bernoulli(0.5);
        if (a) { break; }
      }
    }
  )");
}

TEST(SchedulerEnumerationTest, ChoiceAroundObserve) {
  expectExactLowerBound(R"(
    bool a, b;
    proc main() {
      a ~ bernoulli(0.5);
      b ~ bernoulli(0.5);
      if star { observe(a || b); } else { observe(a); }
    }
  )");
}

TEST(SchedulerEnumerationTest, InterproceduralChoices) {
  expectExactLowerBound(R"(
    bool a, b;
    proc pick() {
      if star { a := true; } else { a ~ bernoulli(0.5); }
    }
    proc main() {
      pick();
      if star { b := a; } else { skip; }
    }
  )");
}

TEST(SchedulerEnumerationTest, MdpMaxEqualsBestPositionalScheduler) {
  // For (1-exit recursive) MDPs, memoryless deterministic schedulers
  // suffice for the maximum expected reward (Etessami-Yannakakis), so the
  // §5.2 analysis value must equal the max over all resolutions of the
  // ndet sites — checked on the `student` benchmark and a hand-written
  // gambler model.
  const char *Sources[] = {
      nullptr, // placeholder replaced by the student benchmark below
      R"(
        proc round() {
          reward(1);
          if star { if prob(1/2) { round(); } } else { skip; }
        }
        proc main() { round(); }
      )",
  };
  std::string Student;
  for (const auto &Bench : benchmarks::mdpPrograms())
    if (std::string(Bench.Name) == "student")
      Student = Bench.Source;
  ASSERT_FALSE(Student.empty());
  Sources[0] = Student.c_str();

  for (const char *Source : Sources) {
    auto Prog = parseProgramOrDie(Source);
    cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
    MdpDomain Dom;
    SolverOptions Opts;
    Opts.WideningDelay = 10000;
    auto Result = solve(Graph, Dom, Opts);
    unsigned Main = Prog->findProc("main");
    double Analyzed = Result.Values[Graph.proc(Main).Entry];

    size_t Sites = 0;
    for (const Procedure &Proc : Prog->Procs)
      Sites += countNdetSites(*Proc.Body);
    ASSERT_GE(Sites, 1u);
    ASSERT_LE(Sites, 10u);
    double Best = -1.0;
    for (size_t Mask = 0; Mask != (size_t(1) << Sites); ++Mask) {
      std::vector<bool> Choices(Sites);
      for (size_t B = 0; B != Sites; ++B)
        Choices[B] = (Mask >> B) & 1;
      Program Resolved;
      Resolved.Vars = Prog->Vars;
      size_t NextSite = 0;
      for (const Procedure &Proc : Prog->Procs)
        Resolved.Procs.push_back(Procedure{
            Proc.Name, resolveStmt(*Proc.Body, Choices, NextSite), {}});
      cfg::ProgramGraph ResolvedGraph =
          cfg::ProgramGraph::build(Resolved);
      auto Rewards =
          baselines::rewardSystem(ResolvedGraph,
                                  baselines::NdetResolution::Max)
              .solveKleene(1e-13, 3000000);
      Best = std::max(
          Best, Rewards[ResolvedGraph.proc(Resolved.findProc("main"))
                            .Entry]);
    }
    EXPECT_NEAR(Analyzed, Best, 1e-5) << Source;
  }
}

TEST(SchedulerEnumerationTest, RandomSmallPrograms) {
  Rng R(0xD1CE);
  const char *Pool[] = {
      "a ~ bernoulli(0.5);\n",
      "b := a;\n",
      "if star { a := true; } else { a := false; }\n",
      "if star { b ~ bernoulli(0.25); } else { b := a; }\n",
      "if prob(0.5) { a := b; } else { skip; }\n",
  };
  for (int Round = 0; Round != 8; ++Round) {
    std::string Body;
    for (int S = 0; S != 3; ++S)
      Body += Pool[R.below(std::size(Pool))];
    std::string Source = "bool a, b; proc main() { " + Body + " }";
    expectExactLowerBound(Source.c_str());
  }
}
