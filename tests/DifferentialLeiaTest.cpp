//===- tests/DifferentialLeiaTest.cpp - Ladder vs polyhedra LEIA ----------===//
//
// The exactness contract of the numeric-domain ladder, end to end: running
// the LEIA analysis of §5.3 with `--numeric=ladder` must produce the same
// invariants as the monolithic-polyhedra baseline, to the solver's own
// 1e-9 tolerance — on every LEIA benchmark of Table 1 and on seeded random
// real-valued programs covering affine assignments, sampling,
// probabilistic / conditional / demonic branching, probabilistically
// terminating loops, and widened counting loops.
//
// Comparison is semantic, not textual: each component of the ladder
// summary is converted to its exact polyhedron (LadderValue::toPolyhedron)
// and checked for mutual inclusion with the baseline at 1e-9 — the same
// approximate order the fixpoint detection uses, so a divergence the test
// tolerates is one the analysis itself cannot observe.
//
//===----------------------------------------------------------------------===//

#include "RandomProgramGen.h"
#include "benchmarks/Programs.h"
#include "cfg/HyperGraph.h"
#include "core/Solver.h"
#include "domains/LeiaDomain.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace pmaf;
using namespace pmaf::core;
using namespace pmaf::domains;
using namespace pmaf::poly;

namespace {

constexpr double Tol = 1e-9;

/// Mutual approximate inclusion of a ladder component and its polyhedral
/// baseline.
bool sameSet(const LadderValue &L, const Polyhedron &P) {
  Polyhedron LP = L.toPolyhedron();
  return LP.containsApprox(P, Tol) && P.containsApprox(LP, Tol);
}

/// Runs the LEIA analysis of \p Prog under both backends and expects every
/// node summary to agree (P and EP components separately) at 1e-9.
///
/// \p SolveTolerance is the domains' internal fixpoint-detection tolerance.
/// The Table 1 benchmarks run at the production 1e-9: their §6.1-rounded
/// chains stabilize exactly, so the two backends land on literally equal
/// sets. Programs with free-running probabilistic loops stop on the
/// *approximate* equality instead, and the stopping iterate depends on the
/// comparison's representation (blockwise vs monolithic norms) — per-run
/// noise of order the tolerance that has nothing to do with ladder
/// exactness. The random families therefore solve at 1e-12, pushing that
/// noise three orders of magnitude below the 1e-9 comparison.
void expectBackendsAgree(const lang::Program &Prog, const std::string &Tag,
                         double SolveTolerance = 1e-9) {
  cfg::ProgramGraph Graph = cfg::ProgramGraph::build(Prog);
  SolverOptions Opts;
  Opts.WideningDelay = 2; // Table 1 configuration.

  LeiaDomainT<Polyhedron> PolyDom(Prog, SolveTolerance);
  auto PolyResult = solve(Graph, PolyDom, Opts);
  LeiaDomainT<LadderValue> LadderDom(Prog, SolveTolerance);
  auto LadderResult = solve(Graph, LadderDom, Opts);

  ASSERT_EQ(PolyResult.Stats.Converged, LadderResult.Stats.Converged)
      << Tag << ": one backend converged, the other did not";
  ASSERT_EQ(PolyResult.Values.size(), LadderResult.Values.size());
  for (size_t Node = 0; Node != PolyResult.Values.size(); ++Node) {
    const auto &PV = PolyResult.Values[Node];
    const auto &LV = LadderResult.Values[Node];
    EXPECT_TRUE(sameSet(LV.P, PV.P))
        << Tag << ": P diverges at node " << Node << "\n  ladder: "
        << LadderDom.toString(LV) << "\n  poly:   " << PolyDom.toString(PV);
    EXPECT_TRUE(sameSet(LV.EP, PV.EP))
        << Tag << ": EP diverges at node " << Node << "\n  ladder: "
        << LadderDom.toString(LV) << "\n  poly:   " << PolyDom.toString(PV);
  }

  // At the production tolerance the rounded chains stabilize exactly, so
  // even the *printed* invariants at the entry of main — what Table 1
  // reports — must agree verbatim as sets. (The enumeration order follows
  // the backend's constraint-list order, so sort both sides.)
  if (SolveTolerance == 1e-9) {
    unsigned Entry = Graph.proc(Prog.findProc("main")).Entry;
    auto LadderInv =
        LadderDom.describeInvariants(LadderResult.Values[Entry]);
    auto PolyInv = PolyDom.describeInvariants(PolyResult.Values[Entry]);
    std::sort(LadderInv.begin(), LadderInv.end());
    std::sort(PolyInv.begin(), PolyInv.end());
    EXPECT_EQ(LadderInv, PolyInv) << Tag << ": printed invariants diverge";
  }
}

} // namespace

TEST(DifferentialLeiaTest, AllLeiaBenchmarks) {
  for (const auto &Bench : benchmarks::leiaPrograms()) {
    auto Prog = lang::parseProgramOrDie(Bench.Source);
    expectBackendsAgree(*Prog, Bench.Name);
  }
}

TEST(DifferentialLeiaTest, RandomStraightLineHeavy) {
  // Mostly assignments and sampling: exercises composition and
  // probabilistic choice without widening.
  Rng R(1001);
  for (int Iter = 0; Iter != 12; ++Iter) {
    auto Prog = testgen::randomRealProgram(R, /*NumVars=*/3,
                                           /*NumStmts=*/4, /*Depth=*/1);
    expectBackendsAgree(*Prog,
                        "straight-line seed 1001 #" + std::to_string(Iter),
                        /*SolveTolerance=*/1e-12);
  }
}

TEST(DifferentialLeiaTest, RandomNested) {
  // Deeper nesting: branches inside loops inside branches, so join,
  // widening, and the two-vocabulary lift all fire on packed values.
  Rng R(2002);
  for (int Iter = 0; Iter != 10; ++Iter) {
    auto Prog = testgen::randomRealProgram(R, /*NumVars=*/3,
                                           /*NumStmts=*/3, /*Depth=*/2);
    expectBackendsAgree(*Prog, "nested seed 2002 #" + std::to_string(Iter),
                        /*SolveTolerance=*/1e-12);
  }
}

TEST(DifferentialLeiaTest, RandomWide) {
  // More variables than any single constraint touches: the regime where
  // variable packing pays, and where a packing bug would diverge.
  Rng R(3003);
  for (int Iter = 0; Iter != 8; ++Iter) {
    auto Prog = testgen::randomRealProgram(R, /*NumVars=*/5,
                                           /*NumStmts=*/4, /*Depth=*/2);
    expectBackendsAgree(*Prog, "wide seed 3003 #" + std::to_string(Iter),
                        /*SolveTolerance=*/1e-12);
  }
}
