//===- tests/BenchmarksTest.cpp - Regression net for the Table programs ---===//
//
// Validates the reconstructed §6.2 benchmark programs end-to-end: every
// program parses, lowers, and analyzes to convergence, and the analysis
// results match the values the tables (and hand calculation) predict.
// This keeps the bench binaries honest without running them under ctest.
//
//===----------------------------------------------------------------------===//

#include "benchmarks/Programs.h"
#include "cfg/HyperGraph.h"
#include "core/Solver.h"
#include "domains/BiDomain.h"
#include "domains/LeiaDomain.h"
#include "domains/MdpDomain.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace pmaf;
using namespace pmaf::core;
using namespace pmaf::domains;

namespace {

const benchmarks::BenchProgram &
findProgram(const std::vector<benchmarks::BenchProgram> &Table,
            const char *Name) {
  for (const auto &Bench : Table)
    if (std::string(Bench.Name) == Name)
      return Bench;
  ADD_FAILURE() << "no benchmark named " << Name;
  static benchmarks::BenchProgram Dummy{"", ""};
  return Dummy;
}

} // namespace

//===----------------------------------------------------------------------===//
// Table metadata
//===----------------------------------------------------------------------===//

TEST(BenchmarksTest, AllProgramsParseAndClassify) {
  struct Expected {
    const char *Name;
    char Rec;
  };
  const Expected LeiaMeta[] = {
      {"2d-walk", 'n'},   {"aggregate-rv", 'n'}, {"biased-coin", 'n'},
      {"binom-update", 'n'}, {"coupon5", 'n'},   {"dist", 'n'},
      {"eg", 'n'},        {"eg-tail", 't'},      {"hare-turtle", 'n'},
      {"hawk-dove", 'n'}, {"mot-ex", 'n'},       {"recursive", 'r'},
      {"uniform-dist", 'n'}};
  ASSERT_EQ(benchmarks::leiaPrograms().size(), std::size(LeiaMeta));
  for (size_t I = 0; I != std::size(LeiaMeta); ++I) {
    const auto &Bench = benchmarks::leiaPrograms()[I];
    EXPECT_STREQ(Bench.Name, LeiaMeta[I].Name);
    auto Prog = lang::parseProgramOrDie(Bench.Source);
    EXPECT_EQ(benchmarks::recursionKind(*Prog), LeiaMeta[I].Rec)
        << Bench.Name;
    EXPECT_GT(benchmarks::countLoc(Bench.Source), 0u);
  }
  // Table 2: the recursion column of the paper.
  EXPECT_EQ(benchmarks::recursionKind(*lang::parseProgramOrDie(
                findProgram(benchmarks::biPrograms(), "recursive").Source)),
            'r');
  EXPECT_EQ(benchmarks::recursionKind(*lang::parseProgramOrDie(
                findProgram(benchmarks::biPrograms(), "eg1-tail").Source)),
            't');
  EXPECT_EQ(benchmarks::recursionKind(*lang::parseProgramOrDie(
                findProgram(benchmarks::mdpPrograms(), "student").Source)),
            't');
}

//===----------------------------------------------------------------------===//
// Table 2 (top): BI results
//===----------------------------------------------------------------------===//

namespace {

std::vector<double> biPosterior(const char *Name, double *MassOut) {
  const auto &Bench = findProgram(benchmarks::biPrograms(), Name);
  auto Prog = lang::parseProgramOrDie(Bench.Source);
  BoolStateSpace Space(*Prog);
  cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
  BiDomain Dom(Space);
  SolverOptions Opts;
  Opts.UseWidening = false;
  auto Result = solve(Graph, Dom, Opts);
  std::vector<double> Prior(Space.numStates(), 0.0);
  Prior[0] = 1.0;
  std::vector<double> Post = Dom.posterior(
      Result.Values[Graph.proc(Prog->findProc("main")).Entry], Prior);
  if (MassOut) {
    *MassOut = 0.0;
    for (double P : Post)
      *MassOut += P;
  }
  return Post;
}

} // namespace

TEST(BenchmarksTest, BiComparePosteriorIsThreeEighths) {
  double Mass = 0.0;
  std::vector<double> Post = biPosterior("compare", &Mass);
  EXPECT_NEAR(Mass, 1.0, 1e-9);
  // P[less] = P[A < B] for two uniform 2-bit numbers = 6/16.
  double PLess = 0.0;
  for (size_t S = 0; S != Post.size(); ++S)
    if (S & (1u << 4)) // variable `less` is index 4
      PLess += Post[S];
  EXPECT_NEAR(PLess, 6.0 / 16.0, 1e-9);
}

TEST(BenchmarksTest, BiDiceIsUniformOverSixFaces) {
  double Mass = 0.0;
  std::vector<double> Post = biPosterior("dice", &Mass);
  EXPECT_NEAR(Mass, 1.0, 1e-9);
  EXPECT_NEAR(Post[0], 0.0, 1e-9); // 000 rejected by the loop
  EXPECT_NEAR(Post[7], 0.0, 1e-9); // 111 rejected by the loop
  for (size_t S = 1; S != 7; ++S)
    EXPECT_NEAR(Post[S], 1.0 / 6.0, 1e-9) << "state " << S;
}

TEST(BenchmarksTest, BiTailRecursiveVariantsMatchTheLoopVersions) {
  std::vector<double> Loop = biPosterior("eg1", nullptr);
  std::vector<double> Tail = biPosterior("eg1-tail", nullptr);
  ASSERT_EQ(Loop.size(), Tail.size());
  for (size_t S = 0; S != Loop.size(); ++S)
    EXPECT_NEAR(Loop[S], Tail[S], 1e-7) << "state " << S;
}

TEST(BenchmarksTest, BiEg2ConditioningMass) {
  double Mass = 0.0;
  std::vector<double> Post = biPosterior("eg2", &Mass);
  EXPECT_NEAR(Mass, 0.625, 1e-9);
  EXPECT_NEAR(Post[3], 0.375, 1e-9); // (T,T)
}

TEST(BenchmarksTest, BiRecursiveTerminatesAlmostSurely) {
  double Mass = 0.0;
  std::vector<double> Post = biPosterior("recursive", &Mass);
  EXPECT_NEAR(Mass, 1.0, 1e-6);
  EXPECT_NEAR(Post[0], 1.0, 1e-6); // b = false at exit
}

//===----------------------------------------------------------------------===//
// Table 2 (bottom): MDP results
//===----------------------------------------------------------------------===//

TEST(BenchmarksTest, MdpExpectedRewards) {
  struct Expected {
    const char *Name;
    double Reward;
  } Cases[] = {
      {"binary10", 2.9},
      {"loop", 1.0},
      {"quicksort7", 13.485714285714286},
      {"recursive", 3.0},
      {"student", 20.133333333333333},
  };
  for (const auto &Case : Cases) {
    const auto &Bench = findProgram(benchmarks::mdpPrograms(), Case.Name);
    auto Prog = lang::parseProgramOrDie(Bench.Source);
    cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
    MdpDomain Dom;
    SolverOptions Opts;
    Opts.WideningDelay = 10000;
    auto Result = solve(Graph, Dom, Opts);
    EXPECT_TRUE(Result.Stats.Converged) << Case.Name;
    EXPECT_NEAR(
        Result.Values[Graph.proc(Prog->findProc("main")).Entry],
        Case.Reward, 1e-6)
        << Case.Name;
  }
}

//===----------------------------------------------------------------------===//
// Table 1: LEIA results (the fast rows; the slow loop rows are covered by
// LeiaDomainTest and the bench binary)
//===----------------------------------------------------------------------===//

namespace {

struct LeiaRun {
  std::unique_ptr<lang::Program> Prog;
  std::unique_ptr<cfg::ProgramGraph> Graph;
  std::unique_ptr<LeiaDomain> Dom;
  AnalysisResult<LeiaValue> Result;

  explicit LeiaRun(const char *Name) {
    Prog = lang::parseProgramOrDie(
        findProgram(benchmarks::leiaPrograms(), Name).Source);
    Graph = std::make_unique<cfg::ProgramGraph>(
        cfg::ProgramGraph::build(*Prog));
    Dom = std::make_unique<LeiaDomain>(*Prog);
    SolverOptions Opts;
    Opts.WideningDelay = 2;
    Result = solve(*Graph, *Dom, Opts);
    EXPECT_TRUE(Result.Stats.Converged);
  }

  std::pair<double, double> bounds(std::vector<int64_t> Objective,
                                   std::vector<int64_t> Pre) {
    std::vector<Rational> Obj, PreR;
    for (int64_t O : Objective)
      Obj.push_back(Rational(O));
    for (int64_t P : Pre)
      PreR.push_back(Rational(P));
    auto [Lo, Hi] = Dom->expectationBounds(
        Result.Values[Graph->proc(Prog->findProc("main")).Entry], Obj,
        PreR);
    return {Lo ? Lo->toDouble() : -HUGE_VAL, Hi ? Hi->toDouble() : HUGE_VAL};
  }
};

} // namespace

TEST(BenchmarksTest, Leia2dWalkInvariants) {
  LeiaRun Run("2d-walk");
  // E[x'] = x, E[y'] = y, E[dist'] = dist, count <= E[count'] <= count+1.
  auto [XLo, XHi] = Run.bounds({1, 0, 0, 0}, {3, 5, 2, 7});
  EXPECT_DOUBLE_EQ(XLo, 3.0);
  EXPECT_DOUBLE_EQ(XHi, 3.0);
  auto [CLo, CHi] = Run.bounds({0, 0, 0, 1}, {3, 5, 2, 7});
  EXPECT_DOUBLE_EQ(CLo, 7.0);
  EXPECT_DOUBLE_EQ(CHi, 8.0);
}

TEST(BenchmarksTest, LeiaBinomUpdateInvariant) {
  LeiaRun Run("binom-update");
  // E[4x' - n'] = 4x - n at (x, n) = (2, 3): 4*2.25 - 4 = 5 = 4*2 - 3.
  auto [Lo, Hi] = Run.bounds({4, -1}, {2, 3});
  EXPECT_DOUBLE_EQ(Lo, 5.0);
  EXPECT_DOUBLE_EQ(Hi, 5.0);
}

TEST(BenchmarksTest, LeiaMotExInvariants) {
  LeiaRun Run("mot-ex");
  // E[2x' - y'] = 2x - y and E[4x' - 3count'] = 4x - 3count.
  auto [ALo, AHi] = Run.bounds({2, -1, 0}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(ALo, 0.0);
  EXPECT_DOUBLE_EQ(AHi, 0.0);
  auto [BLo, BHi] = Run.bounds({4, 0, -3}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(BLo, -5.0);
  EXPECT_DOUBLE_EQ(BHi, -5.0);
}

TEST(BenchmarksTest, LeiaUniformDistRanges) {
  LeiaRun Run("uniform-dist");
  auto [NLo, NHi] = Run.bounds({1, 0}, {3, 1});
  EXPECT_DOUBLE_EQ(NLo, 3.0);
  EXPECT_DOUBLE_EQ(NHi, 6.0);
  auto [GLo, GHi] = Run.bounds({0, 1}, {3, 1});
  EXPECT_DOUBLE_EQ(GLo, 1.0);
  EXPECT_DOUBLE_EQ(GHi, 2.5);
}

TEST(BenchmarksTest, LeiaRecursiveSummary) {
  LeiaRun Run("recursive");
  // The ε-converged chain sits just below the true fixpoint x + 9
  // (§6.1-style convergence at tolerance 1e-9 accumulated over the
  // nested recursion).
  auto [Lo, Hi] = Run.bounds({1}, {2});
  EXPECT_NEAR(Lo, 11.0, 1e-4);
  EXPECT_NEAR(Hi, 11.0, 1e-4);
}
