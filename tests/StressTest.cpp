//===- tests/StressTest.cpp - Parameterized property sweeps ---------------===//
//
// Property-based stress suites, parameterized over problem size:
//
//  * BigInt arithmetic against a __int128 oracle (small widths) and
//    against ring identities (large widths);
//  * the polyhedra library's double-description invariants across
//    dimensions (every generator satisfies every constraint, round-trips,
//    lattice monotonicity, projection idempotence, widening coverage);
//  * Bourdoncle's WTO on random graphs: the computed widening points cut
//    every cycle (the property §4.4 needs), and the order covers every
//    vertex exactly once.
//
//===----------------------------------------------------------------------===//

#include "cfg/Wto.h"
#include "poly/Polyhedron.h"
#include "support/BigInt.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace pmaf;
using namespace pmaf::poly;

//===----------------------------------------------------------------------===//
// BigInt sweeps
//===----------------------------------------------------------------------===//

class BigIntPropertyTest : public ::testing::TestWithParam<unsigned> {};

namespace {

BigInt randomBigInt(Rng &R, unsigned Bits) {
  BigInt Value;
  for (unsigned Chunk = 0; Chunk < Bits; Chunk += 32)
    Value = Value.shiftLeft(32) +
            BigInt(static_cast<int64_t>(R.next() & 0xffffffffu));
  Value = Value.shiftRight(
      static_cast<unsigned>((32 - Bits % 32) % 32));
  return R.below(2) ? Value.negated() : Value;
}

} // namespace

TEST_P(BigIntPropertyTest, MatchesInt128OracleWhenSmall) {
  unsigned Bits = GetParam();
  if (Bits > 62)
    GTEST_SKIP() << "oracle covers small widths only";
  Rng R(Bits * 7919);
  for (int Round = 0; Round != 300; ++Round) {
    int64_t A = randomBigInt(R, Bits).toInt64();
    int64_t B = randomBigInt(R, Bits).toInt64();
    __int128 WideA = A, WideB = B;
    auto Same = [](const BigInt &X, __int128 Y) {
      __int128 Back = 0;
      bool Neg = X.sign() < 0;
      BigInt Abs = X.abs();
      // Reconstruct through the decimal printer for full generality.
      for (char C : Abs.toString())
        Back = Back * 10 + (C - '0');
      return (Neg ? -Back : Back) == Y;
    };
    EXPECT_TRUE(Same(BigInt(A) + BigInt(B), WideA + WideB));
    EXPECT_TRUE(Same(BigInt(A) - BigInt(B), WideA - WideB));
    EXPECT_TRUE(Same(BigInt(A) * BigInt(B), WideA * WideB));
    if (B != 0) {
      BigInt Q, Rem;
      BigInt(A).divmod(BigInt(B), Q, Rem);
      EXPECT_TRUE(Same(Q, WideA / WideB));
      EXPECT_TRUE(Same(Rem, WideA % WideB));
    }
  }
}

TEST_P(BigIntPropertyTest, RingIdentitiesAtAnyWidth) {
  unsigned Bits = GetParam();
  Rng R(Bits * 104729);
  for (int Round = 0; Round != 60; ++Round) {
    BigInt A = randomBigInt(R, Bits);
    BigInt B = randomBigInt(R, Bits);
    BigInt C = randomBigInt(R, Bits / 2 + 1);
    EXPECT_EQ((A + B) - B, A);
    EXPECT_EQ(A * B, B * A);
    EXPECT_EQ(A * (B + C), A * B + A * C);
    if (!B.isZero()) {
      BigInt Q, Rem;
      A.divmod(B, Q, Rem);
      EXPECT_EQ(Q * B + Rem, A);
      EXPECT_LT(Rem.abs().compare(B.abs()), 0);
      EXPECT_EQ((A * B).divExact(B), A);
    }
    BigInt G = BigInt::gcd(A, B);
    if (!G.isZero()) {
      EXPECT_TRUE((A % G).isZero());
      EXPECT_TRUE((B % G).isZero());
    }
    // Shifts agree with multiplication by powers of two.
    EXPECT_EQ(A.shiftLeft(17), A * BigInt(1 << 17));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BigIntPropertyTest,
                         ::testing::Values(8u, 16u, 31u, 48u, 62u, 80u,
                                           128u, 256u));

//===----------------------------------------------------------------------===//
// Polyhedra sweeps
//===----------------------------------------------------------------------===//

class PolyhedronPropertyTest : public ::testing::TestWithParam<unsigned> {};

namespace {

Polyhedron randomPolyhedron(Rng &R, unsigned Dim, unsigned NumCons) {
  std::vector<Constraint> Cons;
  // Keep a bounding box so most instances are nonempty polytopes, then
  // add random halfspaces.
  for (unsigned I = 0; I != Dim; ++I) {
    Cons.push_back(Constraint::ge(LinearExpr::variable(Dim, I),
                                  LinearExpr::constant(Dim, Rational(-4))));
    Cons.push_back(Constraint::le(LinearExpr::variable(Dim, I),
                                  LinearExpr::constant(Dim, Rational(4))));
  }
  for (unsigned I = 0; I != NumCons; ++I) {
    LinearExpr E(Dim);
    E.constantTerm() = Rational(static_cast<int64_t>(R.below(9)) - 4);
    for (unsigned V = 0; V != Dim; ++V)
      E.coeff(V) = Rational(static_cast<int64_t>(R.below(5)) - 2);
    Cons.push_back(Constraint{std::move(E), R.below(5) == 0
                                                ? Constraint::Kind::Eq
                                                : Constraint::Kind::Ge});
  }
  return Polyhedron::fromConstraints(Dim, Cons);
}

/// The core double-description consistency: every stored generator
/// satisfies every stored constraint.
void expectDdConsistent(const Polyhedron &P) {
  for (const ConeRow &Con : P.constraints())
    for (const ConeRow &Gen : P.generators()) {
      BigInt Dot = dotProduct(Gen, Con);
      if (Con.IsLinearity || Gen.IsLinearity) {
        EXPECT_TRUE(Dot.isZero()) << P.toString();
      } else {
        EXPECT_GE(Dot.sign(), 0) << P.toString();
      }
    }
}

} // namespace

TEST_P(PolyhedronPropertyTest, DoubleDescriptionConsistency) {
  unsigned Dim = GetParam();
  Rng R(Dim * 31337);
  for (int Round = 0; Round != 25; ++Round) {
    Polyhedron P = randomPolyhedron(R, Dim, Dim + 2);
    if (P.isEmpty())
      continue;
    expectDdConsistent(P);
    // Round-trip: rebuilding from the minimized constraints yields the
    // same polyhedron.
    Polyhedron Q = Polyhedron::fromConstraints(Dim, P.constraintList());
    EXPECT_TRUE(P.equals(Q));
  }
}

TEST_P(PolyhedronPropertyTest, LatticeAndProjectionSweep) {
  unsigned Dim = GetParam();
  Rng R(Dim * 65537);
  for (int Round = 0; Round != 15; ++Round) {
    Polyhedron A = randomPolyhedron(R, Dim, Dim + 1);
    Polyhedron B = randomPolyhedron(R, Dim, Dim + 1);
    Polyhedron M = A.meet(B), J = A.join(B);
    EXPECT_TRUE(A.contains(M));
    EXPECT_TRUE(B.contains(M));
    EXPECT_TRUE(J.contains(A));
    EXPECT_TRUE(J.contains(B));
    expectDdConsistent(M);
    expectDdConsistent(J);
    if (!A.isEmpty()) {
      Polyhedron Proj = A.project({Dim - 1});
      EXPECT_TRUE(Proj.contains(A));
      EXPECT_TRUE(Proj.project({Dim - 1}).equals(Proj));
    }
    if (!A.isEmpty() && !B.isEmpty()) {
      Polyhedron W = A.widen(J);
      EXPECT_TRUE(W.contains(A));
      EXPECT_TRUE(W.contains(J));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, PolyhedronPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

//===----------------------------------------------------------------------===//
// WTO sweeps
//===----------------------------------------------------------------------===//

class WtoPropertyTest : public ::testing::TestWithParam<unsigned> {};

namespace {

/// Collects the vertices of a WTO in order.
void flatten(const std::vector<cfg::WtoElement> &Elements,
             std::vector<unsigned> &Out) {
  for (const cfg::WtoElement &E : Elements) {
    Out.push_back(E.Node);
    flatten(E.Body, Out);
  }
}

/// True if the graph restricted to vertices with Allowed[v] has a cycle.
bool hasCycle(const std::vector<std::vector<unsigned>> &Succs,
              const std::vector<bool> &Allowed) {
  std::vector<int> State(Succs.size(), 0);
  bool Found = false;
  auto Dfs = [&](const auto &Self, unsigned V) -> void {
    State[V] = 1;
    for (unsigned W : Succs[V]) {
      if (!Allowed[W])
        continue;
      if (State[W] == 1)
        Found = true;
      else if (State[W] == 0)
        Self(Self, W);
    }
    State[V] = 2;
  };
  for (unsigned V = 0; V != Succs.size(); ++V)
    if (Allowed[V] && State[V] == 0)
      Dfs(Dfs, V);
  return Found;
}

} // namespace

TEST_P(WtoPropertyTest, WideningPointsCutEveryCycle) {
  unsigned N = GetParam();
  Rng R(N * 2654435761u);
  for (int Round = 0; Round != 30; ++Round) {
    std::vector<std::vector<unsigned>> Succs(N);
    for (unsigned V = 0; V != N; ++V) {
      unsigned Degree = static_cast<unsigned>(R.below(3));
      for (unsigned E = 0; E != Degree; ++E)
        Succs[V].push_back(static_cast<unsigned>(R.below(N)));
    }
    cfg::Wto W = cfg::Wto::compute(Succs, {0});

    // Every vertex appears exactly once.
    std::vector<unsigned> Flat;
    flatten(W.Elements, Flat);
    ASSERT_EQ(Flat.size(), N);
    std::vector<bool> Seen(N, false);
    for (unsigned V : Flat) {
      EXPECT_FALSE(Seen[V]) << "duplicated vertex in WTO";
      Seen[V] = true;
    }

    // Removing the widening points leaves an acyclic graph: this is the
    // property that makes chaotic iteration with widening terminate.
    std::vector<bool> Allowed(N);
    for (unsigned V = 0; V != N; ++V)
      Allowed[V] = !W.WideningPoint[V];
    EXPECT_FALSE(hasCycle(Succs, Allowed));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, WtoPropertyTest,
                         ::testing::Values(3u, 8u, 20u, 60u));
