//===- tests/PolyhedronTest.cpp - Convex polyhedra unit tests -------------===//

#include "poly/Polyhedron.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace pmaf;
using namespace pmaf::poly;

namespace {

LinearExpr var(unsigned Dim, unsigned I) {
  return LinearExpr::variable(Dim, I);
}
LinearExpr cst(unsigned Dim, int64_t V) {
  return LinearExpr::constant(Dim, Rational(V));
}

/// {0 <= x_i <= Hi for all i}: a box in Dim dimensions.
Polyhedron box(unsigned Dim, int64_t Hi) {
  std::vector<Constraint> Cons;
  for (unsigned I = 0; I != Dim; ++I) {
    Cons.push_back(Constraint::ge(var(Dim, I), cst(Dim, 0)));
    Cons.push_back(Constraint::le(var(Dim, I), cst(Dim, Hi)));
  }
  return Polyhedron::fromConstraints(Dim, Cons);
}

std::vector<Rational> pt(std::initializer_list<int64_t> Coords) {
  std::vector<Rational> Result;
  for (int64_t C : Coords)
    Result.push_back(Rational(C));
  return Result;
}

} // namespace

//===----------------------------------------------------------------------===//
// LinearExpr
//===----------------------------------------------------------------------===//

TEST(LinearExprTest, ArithmeticAndEvaluation) {
  LinearExpr E = var(2, 0).scaled(Rational(2)) - var(2, 1) +
                 LinearExpr::constant(2, Rational(3));
  EXPECT_EQ(E.evaluate({Rational(5), Rational(4)}), Rational(9));
  EXPECT_EQ(E.toString({"x", "y"}), "2*x - y + 3");
  EXPECT_EQ((-E).evaluate({Rational(5), Rational(4)}), Rational(-9));
}

TEST(LinearExprTest, ConstantDetection) {
  EXPECT_TRUE(cst(3, 7).isConstant());
  EXPECT_FALSE(var(3, 1).isConstant());
}

//===----------------------------------------------------------------------===//
// Basic polyhedra
//===----------------------------------------------------------------------===//

TEST(PolyhedronTest, UniverseAndEmpty) {
  Polyhedron U = Polyhedron::universe(3);
  EXPECT_TRUE(U.isUniverse());
  EXPECT_FALSE(U.isEmpty());
  EXPECT_TRUE(U.containsPoint(pt({1, -5, 100})));

  Polyhedron E = Polyhedron::empty(3);
  EXPECT_TRUE(E.isEmpty());
  EXPECT_TRUE(U.contains(E));
  EXPECT_FALSE(E.contains(U));
  EXPECT_TRUE(E.contains(E));
}

TEST(PolyhedronTest, InfeasibleConstraintsAreEmpty) {
  // x >= 1 and x <= 0.
  Polyhedron P = Polyhedron::fromConstraints(
      1, {Constraint::ge(var(1, 0), cst(1, 1)),
          Constraint::le(var(1, 0), cst(1, 0))});
  EXPECT_TRUE(P.isEmpty());
}

TEST(PolyhedronTest, IntervalMembership) {
  Polyhedron P = box(1, 2); // 0 <= x <= 2
  EXPECT_TRUE(P.containsPoint(pt({0})));
  EXPECT_TRUE(P.containsPoint(pt({2})));
  EXPECT_TRUE(P.containsPoint({Rational(1, 2)}));
  EXPECT_FALSE(P.containsPoint(pt({3})));
  EXPECT_FALSE(P.containsPoint(pt({-1})));
}

TEST(PolyhedronTest, UnitSquareGeometry) {
  Polyhedron P = box(2, 1);
  // Four vertices.
  unsigned Points = 0, Rays = 0, Lines = 0;
  for (const ConeRow &G : P.generators()) {
    if (G.IsLinearity)
      ++Lines;
    else if (G.Coeffs[0].isZero())
      ++Rays;
    else
      ++Points;
  }
  EXPECT_EQ(Points, 4u);
  EXPECT_EQ(Rays, 0u);
  EXPECT_EQ(Lines, 0u);
  // Four facets.
  EXPECT_EQ(P.constraints().size(), 4u);
}

TEST(PolyhedronTest, EqualityGivesLowDimensional) {
  // x + y == 1 in 2D: a line (1 equality, point + line generators).
  Polyhedron P = Polyhedron::fromConstraints(
      2, {Constraint::eq(var(2, 0) + var(2, 1), cst(2, 1))});
  EXPECT_TRUE(P.containsPoint({Rational(1, 2), Rational(1, 2)}));
  EXPECT_FALSE(P.containsPoint(pt({1, 1})));
  unsigned Equalities = 0;
  for (const ConeRow &C : P.constraints())
    Equalities += C.IsLinearity;
  EXPECT_EQ(Equalities, 1u);
}

TEST(PolyhedronTest, RedundantConstraintsAreRemoved) {
  Polyhedron P = Polyhedron::fromConstraints(
      1, {Constraint::ge(var(1, 0), cst(1, 0)),
          Constraint::ge(var(1, 0), cst(1, -5)),  // redundant
          Constraint::le(var(1, 0), cst(1, 3)),
          Constraint::le(var(1, 0), cst(1, 10))}); // redundant
  EXPECT_EQ(P.constraints().size(), 2u);
}

TEST(PolyhedronTest, SinglePoint) {
  Polyhedron P = Polyhedron::point({Rational(1, 2), Rational(3)});
  EXPECT_TRUE(P.containsPoint({Rational(1, 2), Rational(3)}));
  EXPECT_FALSE(P.containsPoint(pt({0, 3})));
  // A point in 2D needs two equalities.
  unsigned Equalities = 0;
  for (const ConeRow &C : P.constraints())
    Equalities += C.IsLinearity;
  EXPECT_EQ(Equalities, 2u);
}

//===----------------------------------------------------------------------===//
// Lattice operations
//===----------------------------------------------------------------------===//

TEST(PolyhedronTest, MeetIntersects) {
  Polyhedron A = box(2, 2);
  Polyhedron B = Polyhedron::fromConstraints(
      2, {Constraint::ge(var(2, 0) + var(2, 1), cst(2, 3))});
  Polyhedron M = A.meet(B);
  EXPECT_TRUE(M.containsPoint(pt({2, 1})));
  EXPECT_TRUE(M.containsPoint(pt({2, 2})));
  EXPECT_FALSE(M.containsPoint(pt({1, 1})));
  EXPECT_TRUE(A.contains(M));
  EXPECT_TRUE(B.contains(M));
}

TEST(PolyhedronTest, MeetDisjointIsEmpty) {
  Polyhedron A = box(1, 1);
  Polyhedron B = Polyhedron::fromConstraints(
      1, {Constraint::ge(var(1, 0), cst(1, 5))});
  EXPECT_TRUE(A.meet(B).isEmpty());
}

TEST(PolyhedronTest, JoinIsConvexHull) {
  // Hull of {(0,0)} and {(1,1)}: the segment.
  Polyhedron A = Polyhedron::point(pt({0, 0}));
  Polyhedron B = Polyhedron::point(pt({1, 1}));
  Polyhedron J = A.join(B);
  EXPECT_TRUE(J.containsPoint({Rational(1, 2), Rational(1, 2)}));
  EXPECT_FALSE(J.containsPoint({Rational(1, 2), Rational(1, 4)}));
  EXPECT_TRUE(J.contains(A));
  EXPECT_TRUE(J.contains(B));
}

TEST(PolyhedronTest, JoinOfBoxes) {
  // Hull of [0,1]^2 and [2,3]x[0,1]: the whole strip [0,3]x[0,1].
  Polyhedron A = box(2, 1);
  Polyhedron B = Polyhedron::fromConstraints(
      2, {Constraint::ge(var(2, 0), cst(2, 2)),
          Constraint::le(var(2, 0), cst(2, 3)),
          Constraint::ge(var(2, 1), cst(2, 0)),
          Constraint::le(var(2, 1), cst(2, 1))});
  Polyhedron J = A.join(B);
  EXPECT_TRUE(J.containsPoint({Rational(3, 2), Rational(1, 2)}));
  Polyhedron Strip = Polyhedron::fromConstraints(
      2, {Constraint::ge(var(2, 0), cst(2, 0)),
          Constraint::le(var(2, 0), cst(2, 3)),
          Constraint::ge(var(2, 1), cst(2, 0)),
          Constraint::le(var(2, 1), cst(2, 1))});
  EXPECT_TRUE(J.equals(Strip));
}

TEST(PolyhedronTest, JoinWithEmpty) {
  Polyhedron A = box(2, 1);
  EXPECT_TRUE(A.join(Polyhedron::empty(2)).equals(A));
  EXPECT_TRUE(Polyhedron::empty(2).join(A).equals(A));
}

TEST(PolyhedronTest, JoinWithUnbounded) {
  // Hull of the ray {x >= 0, y == 0} and the point (0, 1).
  Polyhedron Ray = Polyhedron::fromConstraints(
      2, {Constraint::ge(var(2, 0), cst(2, 0)),
          Constraint::eq(var(2, 1), cst(2, 0))});
  Polyhedron J = Ray.join(Polyhedron::point(pt({0, 1})));
  EXPECT_TRUE(J.containsPoint(pt({100, 0})));
  EXPECT_TRUE(J.containsPoint({Rational(5), Rational(1, 2)}));
  EXPECT_FALSE(J.containsPoint(pt({0, 2})));
  EXPECT_FALSE(J.containsPoint(pt({-1, 0})));
}

TEST(PolyhedronTest, LatticeLaws) {
  Polyhedron A = box(2, 2);
  Polyhedron B = Polyhedron::fromConstraints(
      2, {Constraint::ge(var(2, 0) + var(2, 1), cst(2, 1))});
  Polyhedron C = Polyhedron::fromConstraints(
      2, {Constraint::le(var(2, 0) - var(2, 1), cst(2, 0))});
  // Commutativity, absorption, idempotence.
  EXPECT_TRUE(A.meet(B).equals(B.meet(A)));
  EXPECT_TRUE(A.join(B).equals(B.join(A)));
  EXPECT_TRUE(A.meet(A).equals(A));
  EXPECT_TRUE(A.join(A).equals(A));
  EXPECT_TRUE(A.meet(A.join(B)).equals(A));
  EXPECT_TRUE(A.join(A.meet(B)).equals(A));
  // Associativity.
  EXPECT_TRUE(A.meet(B.meet(C)).equals(A.meet(B).meet(C)));
  EXPECT_TRUE(A.join(B.join(C)).equals(A.join(B).join(C)));
  // Monotonicity of meet under inclusion.
  EXPECT_TRUE(A.contains(A.meet(B)));
  EXPECT_TRUE(A.join(B).contains(A));
}

//===----------------------------------------------------------------------===//
// Projection / dimension surgery
//===----------------------------------------------------------------------===//

TEST(PolyhedronTest, ProjectForgetsDimension) {
  // {0 <= x <= 1, y == x}: forgetting y leaves 0 <= x <= 1 (y free).
  Polyhedron P = box(2, 1).meet(Polyhedron::fromConstraints(
      2, {Constraint::eq(var(2, 1), var(2, 0))}));
  Polyhedron Q = P.project({1});
  EXPECT_TRUE(Q.containsPoint(pt({0, 100})));
  EXPECT_TRUE(Q.containsPoint(pt({1, -7})));
  EXPECT_FALSE(Q.containsPoint(pt({2, 2})));
}

TEST(PolyhedronTest, ProjectionOfDiagonalStrip) {
  // {y <= x <= y + 1, 0 <= y <= 1}: drop y -> 0 <= x <= 2.
  Polyhedron P = Polyhedron::fromConstraints(
      2, {Constraint::ge(var(2, 0) - var(2, 1), cst(2, 0)),
          Constraint::le(var(2, 0) - var(2, 1), cst(2, 1)),
          Constraint::ge(var(2, 1), cst(2, 0)),
          Constraint::le(var(2, 1), cst(2, 1))});
  Polyhedron Q = P.dropTrailing(1);
  EXPECT_EQ(Q.dim(), 1u);
  EXPECT_TRUE(Q.containsPoint(pt({0})));
  EXPECT_TRUE(Q.containsPoint(pt({2})));
  EXPECT_FALSE(Q.containsPoint({Rational(21, 10)}));
  EXPECT_FALSE(Q.containsPoint({Rational(-1, 10)}));
}

TEST(PolyhedronTest, ExtendAddsFreeDimensions) {
  Polyhedron P = box(1, 1).extend(2);
  EXPECT_EQ(P.dim(), 3u);
  EXPECT_TRUE(P.containsPoint(pt({1, 99, -99})));
  EXPECT_FALSE(P.containsPoint(pt({2, 0, 0})));
}

TEST(PolyhedronTest, PermuteRenames) {
  // {x == 0, y == 1} with swap -> {x == 1, y == 0}.
  Polyhedron P = Polyhedron::point(pt({0, 1}));
  Polyhedron Q = P.permute({1, 0});
  EXPECT_TRUE(Q.containsPoint(pt({1, 0})));
  EXPECT_FALSE(Q.containsPoint(pt({0, 1})));
}

TEST(PolyhedronTest, RelationalCompositionByHand) {
  // Compose R1 = {x' == x + 1} with R2 = {x' == 2x} over dims (x, x'):
  // embed as (x, x', t), R1[t/x'], R2[t/x], meet, drop t ->
  // {x' == 2(x+1)}.
  unsigned D = 3;
  Polyhedron R1 = Polyhedron::fromConstraints(
      D, {Constraint::eq(var(D, 2), var(D, 0) + cst(D, 1))}); // t == x + 1
  Polyhedron R2 = Polyhedron::fromConstraints(
      D, {Constraint::eq(var(D, 1), var(D, 2).scaled(Rational(2)))});
  Polyhedron Composed = R1.meet(R2).dropTrailing(1);
  EXPECT_TRUE(Composed.containsPoint(pt({0, 2})));
  EXPECT_TRUE(Composed.containsPoint(pt({3, 8})));
  EXPECT_FALSE(Composed.containsPoint(pt({3, 7})));
}

//===----------------------------------------------------------------------===//
// Optimization
//===----------------------------------------------------------------------===//

TEST(PolyhedronTest, MaximizeOverBox) {
  Polyhedron P = box(2, 2);
  LinearExpr Obj = var(2, 0) + var(2, 1).scaled(Rational(3));
  auto Max = P.maximize(Obj);
  ASSERT_TRUE(Max.has_value());
  EXPECT_EQ(*Max, Rational(8));
  auto Min = P.minimize(Obj);
  ASSERT_TRUE(Min.has_value());
  EXPECT_EQ(*Min, Rational(0));
}

TEST(PolyhedronTest, UnboundedDirections) {
  Polyhedron P = Polyhedron::fromConstraints(
      1, {Constraint::ge(var(1, 0), cst(1, 3))});
  EXPECT_FALSE(P.maximize(var(1, 0)).has_value());
  auto Min = P.minimize(var(1, 0));
  ASSERT_TRUE(Min.has_value());
  EXPECT_EQ(*Min, Rational(3));
}

TEST(PolyhedronTest, MaximizeWithRationalVertices) {
  // {2x + 3y <= 6, x >= 0, y >= 0}: max of x + y at (0, 2) = 2.
  Polyhedron P = Polyhedron::fromConstraints(
      2,
      {Constraint::le(var(2, 0).scaled(Rational(2)) +
                          var(2, 1).scaled(Rational(3)),
                      cst(2, 6)),
       Constraint::ge(var(2, 0), cst(2, 0)),
       Constraint::ge(var(2, 1), cst(2, 0))});
  auto Max = P.maximize(var(2, 0) + var(2, 1));
  ASSERT_TRUE(Max.has_value());
  EXPECT_EQ(*Max, Rational(3)); // Vertex (3, 0).
  auto MaxY = P.maximize(var(2, 1));
  EXPECT_EQ(*MaxY, Rational(2));
}

//===----------------------------------------------------------------------===//
// satisfies / widen
//===----------------------------------------------------------------------===//

TEST(PolyhedronTest, SatisfiesEntailedConstraints) {
  Polyhedron P = box(2, 1);
  EXPECT_TRUE(P.satisfies(
      Constraint::le(var(2, 0) + var(2, 1), cst(2, 2))));
  EXPECT_FALSE(P.satisfies(
      Constraint::le(var(2, 0) + var(2, 1), cst(2, 1))));
  EXPECT_TRUE(P.satisfies(Constraint::ge(var(2, 0), cst(2, 0))));
}

TEST(PolyhedronTest, WideningDropsUnstableBounds) {
  // [0,1] widened with [0,2]: the upper bound is unstable -> [0, inf).
  Polyhedron A = box(1, 1);
  Polyhedron B = box(1, 2);
  Polyhedron W = A.widen(B);
  EXPECT_TRUE(W.containsPoint(pt({1000000})));
  EXPECT_FALSE(W.containsPoint(pt({-1})));
  EXPECT_TRUE(W.contains(B));
}

TEST(PolyhedronTest, WideningKeepsStableEqualityHalf) {
  // {x == y, 0 <= x <= 1} widened with {x <= y <= 2x, 0 <= x <= 2}:
  // the half x <= y survives, y <= x does not.
  Polyhedron A = Polyhedron::fromConstraints(
      2, {Constraint::eq(var(2, 0), var(2, 1)),
          Constraint::ge(var(2, 0), cst(2, 0)),
          Constraint::le(var(2, 0), cst(2, 1))});
  Polyhedron B = Polyhedron::fromConstraints(
      2, {Constraint::le(var(2, 0), var(2, 1)),
          Constraint::le(var(2, 1), var(2, 0).scaled(Rational(2))),
          Constraint::ge(var(2, 0), cst(2, 0)),
          Constraint::le(var(2, 0), cst(2, 2))});
  Polyhedron W = A.widen(B);
  EXPECT_TRUE(W.satisfies(Constraint::le(var(2, 0), var(2, 1))));
  EXPECT_FALSE(W.satisfies(Constraint::le(var(2, 1), var(2, 0))));
  EXPECT_TRUE(W.satisfies(Constraint::ge(var(2, 0), cst(2, 0))));
  EXPECT_TRUE(W.contains(B));
  EXPECT_TRUE(W.contains(A));
}

TEST(PolyhedronTest, WideningStabilizesAscendingChain) {
  // Boxes [0, k] widen to [0, inf) after one application, after which the
  // chain is stable.
  Polyhedron Current = box(1, 1);
  for (int K = 2; K <= 5; ++K) {
    Polyhedron Next = Current.join(box(1, K));
    Polyhedron Widened = Current.widen(Next);
    if (Widened.equals(Current))
      break;
    Current = Widened;
  }
  EXPECT_TRUE(Current.containsPoint(pt({1000000})));
  // One more round must be stable.
  Polyhedron Again = Current.widen(Current.join(box(1, 100)));
  EXPECT_TRUE(Again.equals(Current));
}

//===----------------------------------------------------------------------===//
// Randomized consistency checks
//===----------------------------------------------------------------------===//

TEST(PolyhedronTest, PropertyHullContainsSampledMidpoints) {
  Rng R(2718);
  for (int Round = 0; Round != 20; ++Round) {
    // Two random points in 3D; their hull must contain every convex
    // combination with denominator 4.
    std::vector<Rational> A, B;
    for (int I = 0; I != 3; ++I) {
      A.push_back(Rational(static_cast<int64_t>(R.below(21)) - 10));
      B.push_back(Rational(static_cast<int64_t>(R.below(21)) - 10));
    }
    Polyhedron Hull =
        Polyhedron::point(A).join(Polyhedron::point(B));
    for (int Num = 0; Num <= 4; ++Num) {
      Rational T(Num, 4);
      std::vector<Rational> Mid;
      for (int I = 0; I != 3; ++I)
        Mid.push_back(A[I] * (Rational(1) - T) + B[I] * T);
      EXPECT_TRUE(Hull.containsPoint(Mid));
    }
  }
}

TEST(PolyhedronTest, PropertyMeetJoinConsistency) {
  // For random half-space pairs: meet ⊆ each ⊆ join.
  Rng R(999);
  for (int Round = 0; Round != 30; ++Round) {
    auto RandomHalfSpace = [&R]() {
      LinearExpr E(2);
      E.constantTerm() = Rational(static_cast<int64_t>(R.below(11)) - 5);
      E.coeff(0) = Rational(static_cast<int64_t>(R.below(7)) - 3);
      E.coeff(1) = Rational(static_cast<int64_t>(R.below(7)) - 3);
      return Polyhedron::fromConstraints(2,
                                         {Constraint{E, Constraint::Kind::Ge}});
    };
    Polyhedron A = RandomHalfSpace().meet(box(2, 4));
    Polyhedron B = RandomHalfSpace().meet(box(2, 4));
    Polyhedron M = A.meet(B), J = A.join(B);
    EXPECT_TRUE(A.contains(M));
    EXPECT_TRUE(B.contains(M));
    EXPECT_TRUE(J.contains(A));
    EXPECT_TRUE(J.contains(B));
    EXPECT_TRUE(J.contains(M));
  }
}

TEST(PolyhedronTest, PropertyDoubleProjection) {
  // Projecting twice equals projecting once; projection is extensive.
  Polyhedron P = box(3, 2).meet(Polyhedron::fromConstraints(
      3, {Constraint::le(var(3, 0) + var(3, 1) + var(3, 2), cst(3, 4))}));
  Polyhedron Q1 = P.project({2});
  Polyhedron Q2 = Q1.project({2});
  EXPECT_TRUE(Q1.equals(Q2));
  EXPECT_TRUE(Q1.contains(P));
}

TEST(PolyhedronTest, CubeVertexAndFacetCounts) {
  Polyhedron Cube = box(3, 1);
  unsigned Points = 0;
  for (const ConeRow &G : Cube.generators())
    if (!G.IsLinearity && G.Coeffs[0].sign() > 0)
      ++Points;
  EXPECT_EQ(Points, 8u);
  EXPECT_EQ(Cube.constraints().size(), 6u);
}

TEST(PolyhedronTest, ToStringSmoke) {
  Polyhedron P = box(1, 1);
  std::string S = P.toString({"x"});
  EXPECT_NE(S.find("x"), std::string::npos);
  EXPECT_EQ(Polyhedron::empty(1).toString(), "{false}");
  EXPECT_EQ(Polyhedron::universe(1).toString(), "{true}");
}
