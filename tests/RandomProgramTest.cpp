//===- tests/RandomProgramTest.cpp - Differential testing on random programs =//
//
// Generates random probabilistic programs and cross-checks independent
// implementations against each other:
//
//  * random Boolean programs: the PMAF Bayesian-inference instantiation
//    (backward, two-vocabulary, §5.1) against the Claret-style forward
//    propagation — two very different algorithms that must agree exactly
//    in the absence of nondeterminism;
//  * random reward programs: the PMAF MDP instantiation (§5.2) against the
//    PReMo-style monotone equation solver;
//  * random straight-line arithmetic programs: LEIA expectations (§5.3)
//    against the Monte-Carlo interpreter.
//
//===----------------------------------------------------------------------===//

#include "RandomProgramGen.h"

#include "baselines/ClaretForward.h"
#include "baselines/PolySystem.h"
#include "cfg/HyperGraph.h"
#include "concrete/Interpreter.h"
#include "core/Solver.h"
#include "domains/BiDomain.h"
#include "domains/LeiaDomain.h"
#include "domains/MdpDomain.h"
#include "lang/Ast.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace pmaf;
using namespace pmaf::core;
using namespace pmaf::domains;
using namespace pmaf::lang;

// The random Boolean-program generators (legacy no-ndet/no-call shape used
// here, plus the configurable one DifferentialBiTest sweeps) live in
// tests/RandomProgramGen.h, shared across the differential suites.
using pmaf::testgen::randomBoolProgram;
using pmaf::testgen::randomProb;

TEST(RandomProgramTest, BiAgreesWithForwardBaseline) {
  Rng R(20260706);
  for (int Round = 0; Round != 40; ++Round) {
    auto Prog = randomBoolProgram(R, 3, 4);
    BoolStateSpace Space(*Prog);
    cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
    BiDomain Dom(Space);
    SolverOptions Opts;
    Opts.UseWidening = false;
    auto Result = solve(Graph, Dom, Opts);

    // Random prior.
    std::vector<double> Prior(Space.numStates(), 0.0);
    double Mass = 0.0;
    for (double &P : Prior)
      Mass += (P = R.uniform());
    for (double &P : Prior)
      P /= Mass;

    std::vector<double> Backward =
        Dom.posterior(Result.Values[Graph.proc(0).Entry], Prior);
    baselines::ClaretForward Forward(Space);
    std::vector<double> Fwd = Forward.posterior(0, Prior);
    for (size_t S = 0; S != Backward.size(); ++S)
      ASSERT_NEAR(Backward[S], Fwd[S], 1e-7)
          << "round " << Round << ", state " << S << "\n"
          << toString(*Prog);
  }
}

TEST(RandomProgramTest, BiAgreesWithMonteCarlo) {
  Rng R(777);
  for (int Round = 0; Round != 5; ++Round) {
    auto Prog = randomBoolProgram(R, 3, 3);
    BoolStateSpace Space(*Prog);
    cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
    BiDomain Dom(Space);
    SolverOptions Opts;
    Opts.UseWidening = false;
    auto Result = solve(Graph, Dom, Opts);
    std::vector<double> Prior(Space.numStates(), 0.0);
    Prior[0] = 1.0;
    std::vector<double> Post =
        Dom.posterior(Result.Values[Graph.proc(0).Entry], Prior);

    concrete::Interpreter Interp(*Prog, 1000 + Round);
    const int N = 40000;
    std::vector<double> Counts(Space.numStates(), 0.0);
    for (int I = 0; I != N; ++I) {
      auto Run = Interp.run(0, std::vector<double>(3, 0.0), 100000);
      if (!Run.terminated())
        continue;
      size_t State = 0;
      for (unsigned V = 0; V != 3; ++V)
        if (Run.State[V] != 0.0)
          State |= size_t(1) << V;
      Counts[State] += 1.0;
    }
    for (size_t S = 0; S != Post.size(); ++S)
      ASSERT_NEAR(Post[S], Counts[S] / N, 0.02)
          << "round " << Round << ", state " << S << "\n"
          << toString(*Prog);
  }
}

//===----------------------------------------------------------------------===//
// Random reward programs: MDP instantiation vs equation solver
//===----------------------------------------------------------------------===//

namespace {

Stmt::Ptr randomRewardStmt(Rng &R, unsigned Depth) {
  unsigned Kind = static_cast<unsigned>(R.below(Depth == 0 ? 1 : 4));
  switch (Kind) {
  case 0:
    return Stmt::makeReward(
        Rational(static_cast<int64_t>(R.below(8)), 2));
  case 1: {
    Guard G;
    G.TheKind = Guard::Kind::Prob;
    G.Prob = randomProb(R);
    std::vector<Stmt::Ptr> Then, Else;
    Then.push_back(randomRewardStmt(R, Depth - 1));
    Else.push_back(randomRewardStmt(R, Depth - 1));
    return Stmt::makeIf(std::move(G), Stmt::makeBlock(std::move(Then)),
                        Stmt::makeBlock(std::move(Else)));
  }
  case 2: {
    Guard G;
    G.TheKind = Guard::Kind::Ndet;
    std::vector<Stmt::Ptr> Then, Else;
    Then.push_back(randomRewardStmt(R, Depth - 1));
    Else.push_back(randomRewardStmt(R, Depth - 1));
    return Stmt::makeIf(std::move(G), Stmt::makeBlock(std::move(Then)),
                        Stmt::makeBlock(std::move(Else)));
  }
  default: {
    Guard G;
    G.TheKind = Guard::Kind::Prob;
    G.Prob = Rational(static_cast<int64_t>(R.below(4)), 5); // <= 3/5
    std::vector<Stmt::Ptr> Body;
    Body.push_back(randomRewardStmt(R, Depth - 1));
    return Stmt::makeWhile(std::move(G), Stmt::makeBlock(std::move(Body)));
  }
  }
}

} // namespace

TEST(RandomProgramTest, MdpAgreesWithEquationSolver) {
  Rng R(424242);
  for (int Round = 0; Round != 40; ++Round) {
    auto Prog = std::make_unique<Program>();
    std::vector<Stmt::Ptr> Stmts;
    for (int I = 0; I != 3; ++I)
      Stmts.push_back(randomRewardStmt(R, 3));
    Prog->Procs.push_back(
        Procedure{"main", Stmt::makeBlock(std::move(Stmts)), {}});
    cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);

    MdpDomain Dom;
    SolverOptions Opts;
    Opts.WideningDelay = 10000;
    auto Result = solve(Graph, Dom, Opts);

    auto Baseline =
        baselines::rewardSystem(Graph, baselines::NdetResolution::Max)
            .solveKleene(1e-13, 3000000);
    unsigned Entry = Graph.proc(0).Entry;
    ASSERT_NEAR(Result.Values[Entry], Baseline[Entry], 1e-6)
        << "round " << Round << "\n"
        << toString(*Prog);
  }
}

//===----------------------------------------------------------------------===//
// Random arithmetic programs: LEIA vs Monte Carlo
//===----------------------------------------------------------------------===//

namespace {

Stmt::Ptr randomArithStmt(Rng &R, unsigned NumVars) {
  unsigned Var = static_cast<unsigned>(R.below(NumVars));
  switch (R.below(4)) {
  case 0: {
    // x := a*x + b*y + c with small nonnegative coefficients.
    Expr::Ptr E = Expr::makeNumber(Rational(
        static_cast<int64_t>(R.below(3))));
    for (unsigned V = 0; V != NumVars; ++V)
      if (R.below(2) == 0)
        E = Expr::makeBinary(
            Expr::Kind::Add, std::move(E),
            Expr::makeBinary(
                Expr::Kind::Mul,
                Expr::makeNumber(Rational(
                    static_cast<int64_t>(R.below(3)))),
                Expr::makeVar(V)));
    return Stmt::makeAssign(Var, std::move(E));
  }
  case 1: {
    Dist D;
    D.TheKind = Dist::Kind::Uniform;
    int64_t Lo = static_cast<int64_t>(R.below(3));
    D.Params.push_back(Expr::makeNumber(Rational(Lo)));
    D.Params.push_back(Expr::makeNumber(
        Rational(Lo + 1 + static_cast<int64_t>(R.below(3)))));
    return Stmt::makeSample(Var, std::move(D));
  }
  case 2: {
    Dist D;
    D.TheKind = Dist::Kind::Bernoulli;
    D.Params.push_back(Expr::makeNumber(randomProb(R)));
    return Stmt::makeSample(Var, std::move(D));
  }
  default: {
    Guard G;
    G.TheKind = Guard::Kind::Prob;
    G.Prob = randomProb(R);
    std::vector<Stmt::Ptr> Then, Else;
    Then.push_back(randomArithStmt(R, NumVars));
    Else.push_back(randomArithStmt(R, NumVars));
    return Stmt::makeIf(std::move(G), Stmt::makeBlock(std::move(Then)),
                        Stmt::makeBlock(std::move(Else)));
  }
  }
}

} // namespace

TEST(RandomProgramTest, LeiaExpectationsMatchMonteCarlo) {
  Rng R(31337);
  for (int Round = 0; Round != 8; ++Round) {
    auto Prog = std::make_unique<Program>();
    Prog->Vars.push_back(VarInfo{"x", true, {}});
    Prog->Vars.push_back(VarInfo{"y", true, {}});
    std::vector<Stmt::Ptr> Stmts;
    for (int I = 0; I != 4; ++I)
      Stmts.push_back(randomArithStmt(R, 2));
    Prog->Procs.push_back(
        Procedure{"main", Stmt::makeBlock(std::move(Stmts)), {}});

    cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
    LeiaDomain Dom(*Prog);
    auto Result = solve(Graph, Dom);
    unsigned Entry = Graph.proc(0).Entry;

    concrete::Interpreter Interp(*Prog, 9000 + Round);
    const int N = 30000;
    double SumX = 0.0, SumY = 0.0;
    for (int I = 0; I != N; ++I) {
      auto Run = Interp.run(0, {1.0, 2.0}, 100000);
      ASSERT_TRUE(Run.terminated());
      SumX += Run.State[0];
      SumY += Run.State[1];
    }
    auto CheckBounds = [&](const std::vector<Rational> &Objective,
                           double Sampled) {
      auto [Lo, Hi] = Dom.expectationBounds(
          Result.Values[Entry], Objective, {Rational(1), Rational(2)});
      double Slack = 0.05 * (1.0 + std::fabs(Sampled));
      if (Lo) {
        EXPECT_LE(Lo->toDouble(), Sampled + Slack)
            << "round " << Round << "\n"
            << toString(*Prog);
      }
      if (Hi) {
        EXPECT_GE(Hi->toDouble(), Sampled - Slack)
            << "round " << Round << "\n"
            << toString(*Prog);
      }
    };
    CheckBounds({Rational(1), Rational(0)}, SumX / N);
    CheckBounds({Rational(0), Rational(1)}, SumY / N);
  }
}
