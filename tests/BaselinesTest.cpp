//===- tests/BaselinesTest.cpp - PReMo-style and Claret-style baselines ---===//

#include "baselines/ClaretForward.h"
#include "baselines/PolySystem.h"
#include "cfg/HyperGraph.h"
#include "core/Solver.h"
#include "domains/BiDomain.h"
#include "domains/MdpDomain.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace pmaf;
using namespace pmaf::baselines;
using namespace pmaf::core;
using namespace pmaf::domains;

//===----------------------------------------------------------------------===//
// PolySystem solvers
//===----------------------------------------------------------------------===//

TEST(PolySystemTest, LinearFixpoint) {
  // x = 1/2 x + 1/4  =>  x = 1/2.
  PolySystem Sys;
  auto Rhs = Sys.add(Sys.mul(Sys.constant(0.5), Sys.variable(0)),
                     Sys.constant(0.25));
  Sys.addEquation(Rhs);
  auto K = Sys.solveKleene();
  auto N = Sys.solveNewton();
  EXPECT_NEAR(K[0], 0.5, 1e-9);
  EXPECT_NEAR(N[0], 0.5, 1e-9);
}

TEST(PolySystemTest, QuadraticBranchingProcess) {
  // x = 1/3 + 2/3 x^2: least fixed point 1/2 (the other root is 1).
  PolySystem Sys;
  auto X = [&Sys] { return Sys.variable(0); };
  Sys.addEquation(Sys.add(
      Sys.constant(1.0 / 3),
      Sys.mul(Sys.constant(2.0 / 3), Sys.mul(X(), X()))));
  PolySystem::Stats KleeneStats, NewtonStats;
  auto K = Sys.solveKleene(1e-12, 1000000, &KleeneStats);
  auto N = Sys.solveNewton(1e-12, 200, &NewtonStats);
  EXPECT_NEAR(K[0], 0.5, 1e-9);
  EXPECT_NEAR(N[0], 0.5, 1e-9);
  // Newton converges quadratically, Kleene only linearly (rate 2/3).
  EXPECT_LT(NewtonStats.Iterations, 30u);
  EXPECT_GT(KleeneStats.Iterations, NewtonStats.Iterations);
}

TEST(PolySystemTest, CriticalBranchingNeedsNewton) {
  // x = 1/2 + 1/2 x^2 has lfp 1 with *sub*linear Kleene convergence
  // (the classic PReMo motivation); Newton still gets close fast.
  PolySystem Sys;
  auto X = [&Sys] { return Sys.variable(0); };
  Sys.addEquation(Sys.add(
      Sys.constant(0.5), Sys.mul(Sys.constant(0.5), Sys.mul(X(), X()))));
  PolySystem::Stats KleeneStats;
  auto K = Sys.solveKleene(1e-12, 5000, &KleeneStats);
  // After 5000 iterations Kleene is still ~4e-4 away (error decays like
  // 2/k), while Newton halves the distance per step.
  EXPECT_FALSE(KleeneStats.Converged);
  EXPECT_LT(K[0], 0.9997);
  auto N = Sys.solveNewton(1e-10, 200);
  EXPECT_NEAR(N[0], 1.0, 1e-4);
}

TEST(PolySystemTest, MinMaxSystems) {
  // x = max(0.3, min(x + 0, 0.8)): lfp is 0.3... then max keeps 0.3.
  PolySystem Sys;
  Sys.addEquation(
      Sys.max(Sys.constant(0.3), Sys.min(Sys.variable(0), Sys.constant(0.8))));
  EXPECT_FALSE(Sys.isPolynomial());
  auto K = Sys.solveKleene();
  EXPECT_NEAR(K[0], 0.3, 1e-9);
}

TEST(PolySystemTest, TerminationSystemOfRecursiveProgram) {
  // main: with prob 2/3 runs two recursive calls; termination prob = 1/2.
  auto Prog = lang::parseProgramOrDie(R"(
    proc main() { if prob(2/3) { main(); main(); } }
  )");
  cfg::ProgramGraph G = cfg::ProgramGraph::build(*Prog);
  PolySystem Sys = terminationSystem(G, NdetResolution::Min);
  auto K = Sys.solveKleene(1e-13, 2000000);
  auto N = Sys.solveNewton();
  EXPECT_NEAR(K[G.proc(0).Entry], 0.5, 1e-5);
  EXPECT_NEAR(N[G.proc(0).Entry], 0.5, 1e-9);
}

TEST(PolySystemTest, TerminationWithDemonicNdet) {
  auto Prog = lang::parseProgramOrDie(R"(
    proc main() { if star { while prob(1) { skip; } } }
  )");
  cfg::ProgramGraph G = cfg::ProgramGraph::build(*Prog);
  auto Demonic = terminationSystem(G, NdetResolution::Min).solveKleene();
  auto Angelic = terminationSystem(G, NdetResolution::Max).solveKleene();
  EXPECT_NEAR(Demonic[G.proc(0).Entry], 0.0, 1e-9);
  EXPECT_NEAR(Angelic[G.proc(0).Entry], 1.0, 1e-9);
}

TEST(PolySystemTest, RewardSystemAgreesWithMdpDomain) {
  const char *Sources[] = {
      "proc main() { reward(1); reward(2); }",
      "proc main() { while prob(3/4) { reward(1); } }",
      "proc main() { if star { reward(5); } else { reward(1); } }",
      "proc main() { if prob(1/2) { reward(2); main(); } else { reward(1); } }",
      R"(proc a() { reward(1); if prob(1/2) { b(); } }
         proc b() { if prob(1/2) { a(); } }
         proc main() { a(); })",
  };
  for (const char *Source : Sources) {
    auto Prog = lang::parseProgramOrDie(Source);
    cfg::ProgramGraph G = cfg::ProgramGraph::build(*Prog);
    PolySystem Sys = rewardSystem(G, NdetResolution::Max);
    auto Baseline = Sys.solveKleene(1e-13, 2000000);
    MdpDomain Dom;
    SolverOptions Opts;
    Opts.WideningDelay = 10000;
    auto Pmaf = solve(G, Dom, Opts);
    unsigned Entry = G.proc(Prog->findProc("main")).Entry;
    EXPECT_NEAR(Baseline[Entry], Pmaf.Values[Entry], 1e-6) << Source;
  }
}

//===----------------------------------------------------------------------===//
// Claret-style forward Bayesian inference
//===----------------------------------------------------------------------===//

namespace {

/// Runs both the forward baseline and the PMAF BI reformulation on the
/// all-false prior and checks agreement.
void expectForwardBackwardAgreement(const char *Source) {
  auto Prog = lang::parseProgramOrDie(Source);
  BoolStateSpace Space(*Prog);
  ClaretForward Forward(Space);
  std::vector<double> Prior(Space.numStates(), 0.0);
  Prior[0] = 1.0;
  std::vector<double> FwdPost =
      Forward.posterior(Prog->findProc("main"), Prior);

  cfg::ProgramGraph G = cfg::ProgramGraph::build(*Prog);
  BiDomain Dom(Space);
  SolverOptions Opts;
  Opts.UseWidening = false;
  auto Result = solve(G, Dom, Opts);
  std::vector<double> BwdPost = Dom.posterior(
      Result.Values[G.proc(Prog->findProc("main")).Entry], Prior);

  ASSERT_EQ(FwdPost.size(), BwdPost.size());
  for (size_t S = 0; S != FwdPost.size(); ++S)
    EXPECT_NEAR(FwdPost[S], BwdPost[S], 1e-7)
        << "state " << S << " of " << Source;
}

} // namespace

TEST(ClaretForwardTest, StraightLine) {
  expectForwardBackwardAgreement(R"(
    bool a, b;
    proc main() { a ~ bernoulli(0.3); b := a; }
  )");
}

TEST(ClaretForwardTest, ObserveConditioning) {
  expectForwardBackwardAgreement(R"(
    bool a, b;
    proc main() {
      a ~ bernoulli(0.5);
      b ~ bernoulli(0.5);
      observe(a || b);
    }
  )");
}

TEST(ClaretForwardTest, Figure1aLoop) {
  expectForwardBackwardAgreement(R"(
    bool b1, b2;
    proc main() {
      b1 ~ bernoulli(0.5);
      b2 ~ bernoulli(0.5);
      while (!b1 && !b2) {
        b1 ~ bernoulli(0.5);
        b2 ~ bernoulli(0.5);
      }
    }
  )");
}

TEST(ClaretForwardTest, NestedBranching) {
  expectForwardBackwardAgreement(R"(
    bool c, d, e;
    proc main() {
      c ~ bernoulli(0.2);
      if (c) { d ~ bernoulli(0.9); } else {
        if prob(0.4) { d := true; } else { d := false; }
      }
      e := d;
      while (c && e) { c ~ bernoulli(0.5); }
    }
  )");
}

TEST(ClaretForwardTest, NonRecursiveCallsInline) {
  expectForwardBackwardAgreement(R"(
    bool b;
    proc flip() { b ~ bernoulli(0.5); }
    proc main() { flip(); observe(b); flip(); }
  )");
}

TEST(ClaretForwardTest, DivergenceLosesMass) {
  auto Prog = lang::parseProgramOrDie(R"(
    bool b;
    proc main() { b ~ bernoulli(0.25); while (b) { skip; } }
  )");
  BoolStateSpace Space(*Prog);
  ClaretForward Forward(Space);
  std::vector<double> Prior = {1.0, 0.0};
  std::vector<double> Post = Forward.posterior(0, Prior);
  EXPECT_NEAR(Post[0], 0.75, 1e-9);
  EXPECT_NEAR(Post[1], 0.0, 1e-9);
}
