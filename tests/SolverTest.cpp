//===- tests/SolverTest.cpp - Generic solver behavior tests ---------------===//
//
// Exercises the interprocedural chaotic-iteration solver of §4.3-4.4
// through a deliberately simple hand-rolled domain, independent of the
// paper's three instantiations.
//
//===----------------------------------------------------------------------===//

#include "cfg/HyperGraph.h"
#include "core/Solver.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

using namespace pmaf;
using namespace pmaf::core;

namespace {

/// A termination-probability-style test domain over [0, 1]: the value at a
/// node is the minimal probability of reaching the exit. This is an
/// under-approximation analysis (iterates up from 0, no widening needed for
/// convergence within tolerance) and makes solver behavior easy to predict.
class ReachDomain {
public:
  using Value = double;

  Value bottom() const { return 0.0; }
  Value one() const { return 1.0; }
  Value extend(const Value &A, const Value &B) const { return A * B; }
  Value condChoice(const lang::Cond &, const Value &A,
                   const Value &B) const {
    return std::min(A, B);
  }
  Value probChoice(const Rational &P, const Value &A, const Value &B) const {
    double Prob = P.toDouble();
    return Prob * A + (1 - Prob) * B;
  }
  Value ndetChoice(const Value &A, const Value &B) const {
    return std::min(A, B);
  }
  Value interpret(const lang::Stmt *) const { return 1.0; }
  bool leq(const Value &A, const Value &B) const { return A <= B + 1e-12; }
  bool equal(const Value &A, const Value &B) const {
    return std::fabs(A - B) <= 1e-12;
  }
  Value widenCond(const Value &, const Value &New) const { return New; }
  Value widenProb(const Value &, const Value &New) const { return New; }
  Value widenNdet(const Value &, const Value &New) const { return New; }
  Value widenCall(const Value &, const Value &New) const { return New; }
  std::string toString(const Value &A) const { return std::to_string(A); }
  /// Stateless over scalar doubles: safe from any thread.
  static constexpr bool ThreadSafeInterpret = true;
};

static_assert(PreMarkovAlgebra<ReachDomain>);
static_assert(threadSafeInterpret<ReachDomain>());

double mainReach(const char *Source, SolverStats *StatsOut = nullptr) {
  auto Prog = lang::parseProgramOrDie(Source);
  cfg::ProgramGraph G = cfg::ProgramGraph::build(*Prog);
  ReachDomain Dom;
  auto Result = solve(G, Dom);
  if (StatsOut)
    *StatsOut = Result.Stats;
  EXPECT_TRUE(Result.Stats.Converged);
  return Result.Values[G.proc(Prog->findProc("main")).Entry];
}

} // namespace

TEST(SolverTest, ExitNodeIsPinnedAtOne) {
  auto Prog = lang::parseProgramOrDie("proc main() { skip; }");
  cfg::ProgramGraph G = cfg::ProgramGraph::build(*Prog);
  ReachDomain Dom;
  auto Result = solve(G, Dom);
  EXPECT_DOUBLE_EQ(Result.Values[G.proc(0).Exit], 1.0);
  EXPECT_DOUBLE_EQ(Result.Values[G.proc(0).Entry], 1.0);
}

TEST(SolverTest, GeometricTerminationProbability) {
  // while prob(1/2) skip: terminates almost surely -> reach = 1.
  EXPECT_NEAR(mainReach(R"(
    proc main() { while prob(1/2) { skip; } }
  )"),
              1.0, 1e-6);
}

TEST(SolverTest, InfiniteLoopHasReachZero) {
  EXPECT_NEAR(mainReach(R"(
    proc main() { while (true) { skip; } }
  )"),
              0.0, 1e-9);
}

TEST(SolverTest, DemonicNdetTakesWorstBranch) {
  // The adversary can enter the infinite loop: min-reach 0.
  EXPECT_NEAR(mainReach(R"(
    proc main() { if star { while (true) { skip; } } else { skip; } }
  )"),
              0.0, 1e-9);
}

TEST(SolverTest, RecursiveOneHalfTermination) {
  // f terminates with prob p where p = 1/2 + 1/2 p^2 (two sequential
  // recursive calls) => p = 1: but float iteration converges slowly toward
  // 1; accept the known iterate band. Use single call: p = 1/2 + 1/2 p
  // => p = 1.
  EXPECT_NEAR(mainReach(R"(
    proc main() { if prob(1/2) { main(); } }
  )"),
              1.0, 1e-5);
}

TEST(SolverTest, TransientCriticalBranchingProcess) {
  // p = 1/3 + 2/3 p^2 has least fixpoint 1/2 (subcritical-to-transient
  // branching): two sequential recursive calls with prob 2/3.
  EXPECT_NEAR(mainReach(R"(
    proc main() { if prob(2/3) { main(); main(); } }
  )"),
              0.5, 1e-4);
}

TEST(SolverTest, StatsAreReported) {
  SolverStats Stats;
  mainReach(R"(
    proc main() { while prob(1/2) { skip; } }
  )",
            &Stats);
  EXPECT_GT(Stats.NodeUpdates, 0u);
  EXPECT_TRUE(Stats.Converged);
}

TEST(SolverTest, MaxUpdatesSafetyValve) {
  // Exhausting the update budget must (a) report Converged = false under
  // every scheduler, and (b) account honestly: a refused update hands its
  // provisional increment back, so the reported NodeUpdates equals the
  // budget exactly instead of overshooting by one refusal per retry.
  auto Prog = lang::parseProgramOrDie(R"(
    proc main() { while prob(1/2) { skip; } }
  )");
  cfg::ProgramGraph G = cfg::ProgramGraph::build(*Prog);
  for (IterationStrategy Strategy :
       {IterationStrategy::WtoRecursive, IterationStrategy::RoundRobin,
        IterationStrategy::Worklist, IterationStrategy::ParallelScc,
        IterationStrategy::ParallelIntra}) {
    ReachDomain Dom;
    SolverOptions Opts;
    Opts.Strategy = Strategy;
    Opts.MaxUpdates = 3;
    auto Result = solve(G, Dom, Opts);
    EXPECT_FALSE(Result.Stats.Converged) << toString(Strategy);
    EXPECT_EQ(Result.Stats.NodeUpdates, 3u) << toString(Strategy);
  }
}

TEST(SolverTest, CallComposesSummaries) {
  // helper reaches exit with prob 1/2 (adversary may diverge); main calls
  // it twice -> 1/4.
  EXPECT_NEAR(mainReach(R"(
    proc helper() {
      if prob(1/2) { while (true) { skip; } }
    }
    proc main() { helper(); helper(); }
  )"),
              0.25, 1e-9);
}

TEST(SolverTest, InterpretCacheCallsOncePerSeqEdge) {
  // Two seq edges inside a loop: the old solver re-interpreted them on
  // every pass; the compiled-program layer must interpret each exactly
  // once and serve cache hits afterwards.
  auto Prog = lang::parseProgramOrDie(R"(
    proc main() { while prob(1/2) { skip; skip; } }
  )");
  cfg::ProgramGraph G = cfg::ProgramGraph::build(*Prog);
  unsigned SeqEdges = 0;
  for (const cfg::HyperEdge &E : G.edges())
    SeqEdges += E.Ctrl.TheKind == cfg::ControlAction::Kind::Seq;
  ReachDomain Dom;
  auto Result = solve(G, Dom);
  EXPECT_TRUE(Result.Stats.Converged);
  EXPECT_LE(Result.Stats.InterpretCalls, SeqEdges);
  EXPECT_GT(Result.Stats.InterpretCacheHits, 0u);
}

TEST(SolverTest, CompiledProgramReuseSkipsReinterpretation) {
  auto Prog = lang::parseProgramOrDie(R"(
    proc main() { while prob(1/2) { skip; } }
  )");
  cfg::ProgramGraph G = cfg::ProgramGraph::build(*Prog);
  ReachDomain Dom;
  CompiledProgram<ReachDomain> Compiled(G, Dom);
  auto First = solve(Compiled);
  EXPECT_GT(First.Stats.InterpretCalls, 0u);
  auto Second = solve(Compiled);
  EXPECT_EQ(Second.Stats.InterpretCalls, 0u); // All transformers cached.
  EXPECT_EQ(Second.Values.size(), First.Values.size());
  for (unsigned V = 0; V != First.Values.size(); ++V)
    EXPECT_TRUE(Dom.equal(First.Values[V], Second.Values[V]));
}

TEST(SolverTest, ObserverSeesSolveLifecycleAndUpdates) {
  auto Prog = lang::parseProgramOrDie(R"(
    proc main() { while prob(1/2) { skip; } }
  )");
  cfg::ProgramGraph G = cfg::ProgramGraph::build(*Prog);
  ReachDomain Dom;
  SolverInstrumentation Counters;
  auto Result = solve(G, Dom, SolverOptions{}, &Counters);
  EXPECT_EQ(Counters.Solves, 1u);
  EXPECT_TRUE(Counters.LastConverged);
  EXPECT_EQ(Counters.NodeUpdates, Result.Stats.NodeUpdates);
  EXPECT_EQ(Counters.WideningApplications,
            Result.Stats.WideningApplications);
  EXPECT_EQ(Counters.InterpretCalls, Result.Stats.InterpretCalls);
  EXPECT_EQ(Counters.InterpretCacheHits, Result.Stats.InterpretCacheHits);
  EXPECT_GT(Counters.ValueChanges, 0u);
  EXPECT_GT(Counters.ComponentStabilizations, 0u); // The while loop.
  EXPECT_GE(Counters.SolveSeconds, 0.0);
  EXPECT_FALSE(Counters.report().empty());
}

TEST(SolverTest, WorklistSchedulerMatchesRecursiveOnRecursion) {
  const char *Source = R"(
    proc helper() { if prob(1/2) { helper(); } }
    proc main() { helper(); helper(); }
  )";
  auto Prog = lang::parseProgramOrDie(Source);
  cfg::ProgramGraph G = cfg::ProgramGraph::build(*Prog);
  ReachDomain Dom;
  SolverOptions Wto;
  auto Reference = solve(G, Dom, Wto);
  SolverOptions Wl;
  Wl.Strategy = IterationStrategy::Worklist;
  auto Result = solve(G, Dom, Wl);
  EXPECT_TRUE(Result.Stats.Converged);
  for (unsigned V = 0; V != Reference.Values.size(); ++V)
    EXPECT_TRUE(Dom.equal(Reference.Values[V], Result.Values[V]));
  // Dirty-node tracking should not do more work than a full-sweep
  // round-robin on the same system.
  SolverOptions Rr;
  Rr.Strategy = IterationStrategy::RoundRobin;
  auto RoundRobin = solve(G, Dom, Rr);
  EXPECT_LE(Result.Stats.NodeUpdates, RoundRobin.Stats.NodeUpdates);
}

TEST(SolverTest, UnreachableProcedureStillAnalyzed) {
  auto Prog = lang::parseProgramOrDie(R"(
    proc dead() { while (true) { skip; } }
    proc main() { skip; }
  )");
  cfg::ProgramGraph G = cfg::ProgramGraph::build(*Prog);
  ReachDomain Dom;
  auto Result = solve(G, Dom);
  EXPECT_NEAR(Result.Values[G.proc(Prog->findProc("dead")).Entry], 0.0,
              1e-9);
  EXPECT_NEAR(Result.Values[G.proc(Prog->findProc("main")).Entry], 1.0,
              1e-9);
}

TEST(SolverTest, ConcurrentPrecompileRacesLazyTransformer) {
  // The per-slot once_flag contract: a parallel precompile racing ad-hoc
  // transformer() calls still interprets each seq edge exactly once, and
  // every requester observes the cached value.
  auto Prog = lang::parseProgramOrDie(R"(
    proc main() {
      skip; skip; skip; skip;
      while prob(1/2) { skip; skip; skip; skip; }
      skip; skip; skip; skip;
    }
  )");
  cfg::ProgramGraph G = cfg::ProgramGraph::build(*Prog);
  std::vector<unsigned> SeqEdges;
  for (unsigned E = 0; E != G.edges().size(); ++E)
    if (G.edges()[E].Ctrl.TheKind == cfg::ControlAction::Kind::Seq)
      SeqEdges.push_back(E);
  ASSERT_GE(SeqEdges.size(), 12u);

  for (int Round = 0; Round != 16; ++Round) {
    ReachDomain Dom;
    CompiledProgram<ReachDomain> Compiled(G, Dom);
    support::ThreadPool Pool(4);
    // Precompilation fans out on the pool while this thread requests the
    // same transformers lazily, in reverse order.
    auto Precompiled =
        Pool.submit([&] { return Compiled.precompile(&Pool); });
    for (size_t I = SeqEdges.size(); I != 0; --I)
      EXPECT_DOUBLE_EQ(Compiled.transformer(SeqEdges[I - 1]), 1.0);
    EXPECT_EQ(Precompiled.get(), SeqEdges.size());
    EXPECT_EQ(Compiled.interpretCalls(), SeqEdges.size())
        << "each seq edge must be interpreted exactly once";
    EXPECT_GE(Compiled.interpretCacheHits(), SeqEdges.size())
        << "the lazy requests must all be served from the cache";
  }
}

TEST(SolverTest, ParallelSolveReportsEngineStats) {
  auto Prog = lang::parseProgramOrDie(R"(
    proc helper() { if prob(1/2) { helper(); } }
    proc main() { skip; helper(); while prob(1/3) { skip; } helper(); }
  )");
  cfg::ProgramGraph G = cfg::ProgramGraph::build(*Prog);
  ReachDomain Dom;

  auto Sequential = solve(G, Dom);
  ASSERT_TRUE(Sequential.Stats.Converged);
  EXPECT_EQ(Sequential.Stats.JobsUsed, 1u);
  EXPECT_EQ(Sequential.Stats.PrecompiledTransformers, 0u); // Lazy path.

  SolverOptions Opts;
  Opts.Strategy = IterationStrategy::ParallelScc;
  Opts.Jobs = 4;
  auto Parallel = solve(G, Dom, Opts);
  ASSERT_TRUE(Parallel.Stats.Converged);
  EXPECT_EQ(Parallel.Stats.JobsUsed, 4u);
  EXPECT_GT(Parallel.Stats.PrecompiledTransformers, 0u);
  EXPECT_GE(Parallel.Stats.PrecompileSeconds, 0.0);
  ASSERT_EQ(Parallel.Values.size(), Sequential.Values.size());
  for (unsigned V = 0; V != Sequential.Values.size(); ++V)
    EXPECT_EQ(Parallel.Values[V], Sequential.Values[V])
        << "parallel fixpoint must be bit-identical at node " << V;
}
