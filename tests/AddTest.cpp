//===- tests/AddTest.cpp - ADD manager and ADD-backed BI tests ------------===//

#include "add/Add.h"
#include "cfg/HyperGraph.h"
#include "core/Solver.h"
#include "domains/AddBiDomain.h"
#include "domains/BiDomain.h"
#include "lang/Parser.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace pmaf;
using namespace pmaf::add;
using namespace pmaf::core;
using namespace pmaf::domains;

//===----------------------------------------------------------------------===//
// AddManager
//===----------------------------------------------------------------------===//

TEST(AddManagerTest, TerminalsAreHashConsed) {
  AddManager Mgr;
  EXPECT_EQ(Mgr.terminal(0.25), Mgr.terminal(0.25));
  EXPECT_NE(Mgr.terminal(0.25), Mgr.terminal(0.5));
  EXPECT_EQ(Mgr.zero(), Mgr.terminal(0.0));
  EXPECT_EQ(Mgr.one(), Mgr.terminal(1.0));
  EXPECT_DOUBLE_EQ(Mgr.terminalValue(Mgr.terminal(3.5)), 3.5);
}

TEST(AddManagerTest, ReductionRule) {
  AddManager Mgr;
  // A node with equal children collapses to the child.
  EXPECT_EQ(Mgr.makeNode(0, Mgr.one(), Mgr.one()), Mgr.one());
  // Identical nodes share structure.
  NodeRef A = Mgr.makeNode(1, Mgr.zero(), Mgr.one());
  NodeRef B = Mgr.makeNode(1, Mgr.zero(), Mgr.one());
  EXPECT_EQ(A, B);
}

TEST(AddManagerTest, ApplyPointwise) {
  AddManager Mgr;
  NodeRef X = Mgr.indicator(0);
  NodeRef Y = Mgr.indicator(1);
  NodeRef Sum = Mgr.apply(Op::Add, X, Y);
  auto At = [&](bool VX, bool VY, NodeRef F) {
    return Mgr.evaluate(F, [&](unsigned Level) {
      return Level == 0 ? VX : VY;
    });
  };
  EXPECT_DOUBLE_EQ(At(false, false, Sum), 0.0);
  EXPECT_DOUBLE_EQ(At(true, false, Sum), 1.0);
  EXPECT_DOUBLE_EQ(At(true, true, Sum), 2.0);
  NodeRef Prod = Mgr.apply(Op::Mul, X, Y);
  EXPECT_DOUBLE_EQ(At(true, false, Prod), 0.0);
  EXPECT_DOUBLE_EQ(At(true, true, Prod), 1.0);
  NodeRef MaxF = Mgr.apply(Op::Max, X, Y);
  EXPECT_DOUBLE_EQ(At(false, true, MaxF), 1.0);
}

TEST(AddManagerTest, AffineAndExtrema) {
  AddManager Mgr;
  NodeRef X = Mgr.indicator(0);
  NodeRef F = Mgr.affine(X, 3.0, 1.0); // 3x + 1 in {1, 4}
  EXPECT_DOUBLE_EQ(Mgr.minTerminal(F), 1.0);
  EXPECT_DOUBLE_EQ(Mgr.maxTerminal(F), 4.0);
  EXPECT_DOUBLE_EQ(Mgr.maxAbsDiff(F, Mgr.one()), 3.0);
}

TEST(AddManagerTest, SumOutHandlesAbsentLevels) {
  AddManager Mgr;
  NodeRef X = Mgr.indicator(0);
  // sum over level 1 (absent): doubles the function.
  NodeRef S1 = Mgr.sumOut(X, {1});
  EXPECT_DOUBLE_EQ(
      Mgr.evaluate(S1, [](unsigned) { return true; }), 2.0);
  // sum over level 0 (present): f(0) + f(1) = 1.
  NodeRef S0 = Mgr.sumOut(X, {0});
  EXPECT_TRUE(Mgr.isTerminal(S0));
  EXPECT_DOUBLE_EQ(Mgr.terminalValue(S0), 1.0);
  // sum over both: 2.
  NodeRef S01 = Mgr.sumOut(X, {0, 1});
  EXPECT_DOUBLE_EQ(Mgr.terminalValue(S01), 2.0);
}

TEST(AddManagerTest, RenameMonotone) {
  AddManager Mgr;
  NodeRef F = Mgr.apply(Op::Add, Mgr.indicator(0),
                        Mgr.scale(Mgr.indicator(2), 2.0));
  NodeRef G = Mgr.rename(F, [](unsigned Level) { return Level + 1; });
  EXPECT_DOUBLE_EQ(Mgr.evaluate(G,
                                [](unsigned Level) { return Level == 1; }),
                   1.0);
  EXPECT_DOUBLE_EQ(Mgr.evaluate(G,
                                [](unsigned Level) { return Level == 3; }),
                   2.0);
}

namespace {

/// Exhaustively compares two functions (possibly owned by different
/// managers) over all assignments to levels [0, NumLevels).
void expectSameFunction(const AddManager &MA, NodeRef A,
                        const AddManager &MB, NodeRef B,
                        unsigned NumLevels,
                        const char *What) {
  for (unsigned Bits = 0; Bits != (1u << NumLevels); ++Bits) {
    auto Asg = [&](unsigned Level) {
      return Level < NumLevels && ((Bits >> Level) & 1u) != 0;
    };
    EXPECT_DOUBLE_EQ(MA.evaluate(A, Asg), MB.evaluate(B, Asg))
        << What << ", assignment bits " << Bits;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// rename regressions: non-monotone permutations
//===----------------------------------------------------------------------===//

// Regression: a permutation swapping two *adjacent* levels must reorder
// the decisions, not just relabel them in place. The structural fast path
// is only sound for maps that preserve the level order on the support;
// the manager has to detect the swap and take the apply-based rebuild.
TEST(AddManagerTest, RenameAdjacentLevelSwap) {
  AddManager Mgr;
  // F = x0 + 2*x1: asymmetric in the two levels, so a silent relabel
  // (keeping the old structure) computes the wrong function.
  NodeRef F = Mgr.apply(Op::Add, Mgr.indicator(0),
                        Mgr.scale(Mgr.indicator(1), 2.0));
  NodeRef G = Mgr.rename(F, [](unsigned Level) { return 1 - Level; });
  // G = x1 + 2*x0, built natively for the canonicity check.
  NodeRef Expected = Mgr.apply(Op::Add, Mgr.indicator(1),
                               Mgr.scale(Mgr.indicator(0), 2.0));
  EXPECT_EQ(G, Expected) << "rename must re-canonicalize, not relabel";
  expectSameFunction(Mgr, G, Mgr, Expected, 2, "adjacent swap");
}

TEST(AddManagerTest, RenameReversePermutation) {
  AddManager Mgr;
  // F = x0 + 2*x1 + 4*x2; reverse all three levels.
  NodeRef F = Mgr.indicator(0);
  F = Mgr.apply(Op::Add, F, Mgr.scale(Mgr.indicator(1), 2.0));
  F = Mgr.apply(Op::Add, F, Mgr.scale(Mgr.indicator(2), 4.0));
  NodeRef G = Mgr.rename(F, [](unsigned Level) { return 2 - Level; });
  NodeRef Expected = Mgr.indicator(2);
  Expected = Mgr.apply(Op::Add, Expected, Mgr.scale(Mgr.indicator(1), 2.0));
  Expected = Mgr.apply(Op::Add, Expected, Mgr.scale(Mgr.indicator(0), 4.0));
  EXPECT_EQ(G, Expected);
  // Spot-check the semantics directly against the defining equation
  // G(asg) = F(level -> asg(Map(level))).
  for (unsigned Bits = 0; Bits != 8; ++Bits) {
    auto Asg = [&](unsigned L) { return ((Bits >> L) & 1u) != 0; };
    EXPECT_DOUBLE_EQ(Mgr.evaluate(G, Asg), Mgr.evaluate(F, [&](unsigned L) {
                       return Asg(2 - L);
                     })) << "bits " << Bits;
  }
}

// Two renames of structurally *shared* subdiagrams through a swapping map:
// memoization across the shared part must not conflate the two contexts.
TEST(AddManagerTest, RenameSwapWithSharedSubgraph) {
  AddManager Mgr;
  NodeRef Shared = Mgr.apply(Op::Add, Mgr.indicator(2),
                             Mgr.scale(Mgr.indicator(3), 2.0));
  // F tests x0 above the shared subgraph and also adds it directly, so
  // Shared appears in two contexts.
  NodeRef F = Mgr.apply(Op::Add, Mgr.apply(Op::Mul, Mgr.indicator(0), Shared),
                        Shared);
  NodeRef G = Mgr.rename(F, [](unsigned Level) {
    // Swap 2 <-> 3, keep 0 in place: non-monotone on the support.
    if (Level == 2)
      return 3u;
    if (Level == 3)
      return 2u;
    return Level;
  });
  for (unsigned Bits = 0; Bits != 16; ++Bits) {
    auto Asg = [&](unsigned L) { return ((Bits >> L) & 1u) != 0; };
    EXPECT_DOUBLE_EQ(Mgr.evaluate(G, Asg), Mgr.evaluate(F, [&](unsigned L) {
                       if (L == 2)
                         return Asg(3);
                       if (L == 3)
                         return Asg(2);
                       return Asg(L);
                     })) << "bits " << Bits;
  }
}

// A map that is non-monotone only on levels *off* the support must still
// be handled (the fast path keys on the support, not the whole domain).
TEST(AddManagerTest, RenameNonMonotoneOffSupport) {
  AddManager Mgr;
  NodeRef F = Mgr.apply(Op::Add, Mgr.indicator(1),
                        Mgr.scale(Mgr.indicator(3), 2.0));
  // On the support {1, 3} the map is monotone (1 -> 2, 3 -> 4); on the
  // untested levels it swaps wildly.
  NodeRef G = Mgr.rename(F, [](unsigned Level) {
    switch (Level) {
    case 0:
      return 5u;
    case 1:
      return 2u;
    case 2:
      return 0u;
    case 3:
      return 4u;
    default:
      return Level;
    }
  });
  NodeRef Expected = Mgr.apply(Op::Add, Mgr.indicator(2),
                               Mgr.scale(Mgr.indicator(4), 2.0));
  EXPECT_EQ(G, Expected);
}

//===----------------------------------------------------------------------===//
// migrate: the rename-and-merge primitive
//===----------------------------------------------------------------------===//

TEST(AddManagerTest, MigratePreservesSemanticsAndSize) {
  AddManager From, To;
  NodeRef F = From.apply(
      Op::Add, From.apply(Op::Mul, From.indicator(0), From.indicator(1)),
      From.scale(From.indicator(2), 0.625));
  NodeRef G = To.migrate(F, From);
  expectSameFunction(From, F, To, G, 3, "migrate");
  EXPECT_EQ(From.nodeCount(F), To.nodeCount(G));
  // Terminal values must survive bit-for-bit (0.625 is exact, but check
  // an awkward double too).
  NodeRef T = From.terminal(0.1);
  EXPECT_EQ(To.terminalValue(To.migrate(T, From)),
            From.terminalValue(T));
}

TEST(AddManagerTest, MigrateIsCanonical) {
  // Extensionally equal diagrams built in two different managers, in
  // different construction orders, must migrate onto the identical
  // NodeRef in the destination — and match the natively built diagram.
  AddManager A, B, Dest;
  NodeRef FA = A.apply(Op::Add, A.indicator(0),
                       A.scale(A.indicator(1), 2.0));
  NodeRef FB = B.apply(Op::Add, B.scale(B.indicator(1), 2.0),
                       B.indicator(0));
  NodeRef Native = Dest.apply(Op::Add, Dest.indicator(0),
                              Dest.scale(Dest.indicator(1), 2.0));
  EXPECT_EQ(Dest.migrate(FA, A), Native);
  EXPECT_EQ(Dest.migrate(FB, B), Native);
}

TEST(AddManagerTest, MigrateSelfAndRoundTripAreIdentity) {
  AddManager Home, Other;
  NodeRef F = Home.apply(Op::Add, Home.indicator(0),
                         Home.scale(Home.indicator(1), 3.0));
  // Migrating within one manager is the identity on NodeRefs.
  EXPECT_EQ(Home.migrate(F, Home), F);
  // Round trip home -> other -> home lands back on the same NodeRef
  // (hash-consing makes the second migration find the original nodes).
  NodeRef Away = Other.migrate(F, Home);
  EXPECT_EQ(Home.migrate(Away, Other), F);
}

TEST(AddManagerTest, MigrationCacheIsReusedAcrossCalls) {
  AddManager From, To;
  NodeRef Shared = From.apply(Op::Add, From.indicator(1),
                              From.scale(From.indicator(2), 2.0));
  NodeRef F = From.apply(Op::Mul, From.indicator(0), Shared);
  MigrationCache Cache;
  NodeRef G1 = To.migrate(F, From, Cache);
  size_t CacheAfterFirst = Cache.size();
  size_t NodesAfterFirst = To.totalNodes();
  // Second migration of an overlapping diagram: the shared subgraph is
  // served from the cache, no new destination nodes appear.
  NodeRef G2 = To.migrate(Shared, From, Cache);
  EXPECT_EQ(Cache.size(), CacheAfterFirst);
  EXPECT_EQ(To.totalNodes(), NodesAfterFirst);
  // And re-migrating the root is a pure cache hit.
  EXPECT_EQ(To.migrate(F, From, Cache), G1);
  expectSameFunction(From, Shared, To, G2, 3, "cached migrate");
}

TEST(AddManagerTest, SharingBeatsEnumeration) {
  // The parity-like function sum of 16 indicators has a linear-size ADD.
  AddManager Mgr;
  NodeRef F = Mgr.zero();
  for (unsigned I = 0; I != 16; ++I)
    F = Mgr.apply(Op::Add, F, Mgr.indicator(I));
  EXPECT_LT(Mgr.nodeCount(F), 200u); // Far below 2^16.
  EXPECT_DOUBLE_EQ(Mgr.maxTerminal(F), 16.0);
}

//===----------------------------------------------------------------------===//
// AddBiDomain vs dense BiDomain: structural cross-validation
//===----------------------------------------------------------------------===//

namespace {

/// Runs both BI implementations on a program and checks the main summary
/// matrices agree entrywise.
void expectDenseAddAgreement(const char *Source) {
  auto Prog = lang::parseProgramOrDie(Source);
  BoolStateSpace Space(*Prog);
  cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
  SolverOptions Opts;
  Opts.UseWidening = false;
  unsigned Entry = Graph.proc(Prog->findProc("main")).Entry;

  BiDomain Dense(Space);
  auto DenseResult = solve(Graph, Dense, Opts);

  AddBiDomain Compact(Space);
  auto CompactResult = solve(Graph, Compact, Opts);

  Matrix Expanded = Compact.toMatrix(CompactResult.Values[Entry]);
  EXPECT_LE(Expanded.maxAbsDiff(DenseResult.Values[Entry]), 1e-9)
      << Source;
}

} // namespace

TEST(AddBiDomainTest, KernelsMatchDense) {
  expectDenseAddAgreement("bool a, b; proc main() { a := true; }");
  expectDenseAddAgreement("bool a, b; proc main() { a := b; }");
  expectDenseAddAgreement(
      "bool a, b; proc main() { a ~ bernoulli(0.3); }");
  expectDenseAddAgreement(
      "bool a, b; proc main() { observe(a || b); }");
  expectDenseAddAgreement(
      "bool a, b; proc main() { skip; }");
}

TEST(AddBiDomainTest, ControlFlowMatchesDense) {
  expectDenseAddAgreement(R"(
    bool a, b;
    proc main() {
      a ~ bernoulli(0.5);
      if (a) { b := true; } else { b ~ bernoulli(0.25); }
    }
  )");
  expectDenseAddAgreement(R"(
    bool a, b;
    proc main() {
      if prob(0.7) { a := true; } else { a := false; }
      if star { b := a; } else { b := true; }
    }
  )");
}

TEST(AddBiDomainTest, Figure1aMatchesDense) {
  expectDenseAddAgreement(R"(
    bool b1, b2;
    proc main() {
      b1 ~ bernoulli(0.5);
      b2 ~ bernoulli(0.5);
      while (!b1 && !b2) {
        b1 ~ bernoulli(0.5);
        b2 ~ bernoulli(0.5);
      }
    }
  )");
}

TEST(AddBiDomainTest, RecursionMatchesDense) {
  expectDenseAddAgreement(R"(
    bool b;
    proc main() {
      b ~ bernoulli(0.5);
      if (b) { main(); }
    }
  )");
}

TEST(AddBiDomainTest, PosteriorMatchesDense) {
  auto Prog = lang::parseProgramOrDie(R"(
    bool b1, b2;
    proc main() {
      b1 ~ bernoulli(0.5);
      if prob(0.5) { b2 := b1; } else { b2 ~ bernoulli(0.5); }
      observe(b1 || b2);
    }
  )");
  BoolStateSpace Space(*Prog);
  cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
  SolverOptions Opts;
  Opts.UseWidening = false;
  unsigned Entry = Graph.proc(0).Entry;
  AddBiDomain Compact(Space);
  auto Result = solve(Graph, Compact, Opts);
  std::vector<double> Prior = {1.0, 0.0, 0.0, 0.0};
  std::vector<double> Post =
      Compact.posterior(Result.Values[Entry], Prior);
  EXPECT_NEAR(Post[0], 0.0, 1e-12);
  EXPECT_NEAR(Post[1], 0.125, 1e-12);
  EXPECT_NEAR(Post[2], 0.125, 1e-12);
  EXPECT_NEAR(Post[3], 0.375, 1e-12);
}

TEST(AddBiDomainTest, IndependentVariablesStayCompact) {
  // n independent coin flips: the dense transformer has 4^n entries, the
  // ADD stays linear in n.
  std::string Decls = "bool";
  std::string Body;
  const unsigned N = 10;
  for (unsigned I = 0; I != N; ++I) {
    Decls += std::string(I ? "," : "") + " v" + std::to_string(I);
    Body += "v" + std::to_string(I) + " ~ bernoulli(0.5);\n";
  }
  std::string Source = Decls + "; proc main() { " + Body + " }";
  auto Prog = lang::parseProgramOrDie(Source);
  BoolStateSpace Space(*Prog);
  cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
  SolverOptions Opts;
  Opts.UseWidening = false;
  AddBiDomain Compact(Space);
  auto Result = solve(Graph, Compact, Opts);
  size_t Size = Compact.nodeCount(Result.Values[Graph.proc(0).Entry]);
  EXPECT_LT(Size, 64u) << "diagram should be linear in n, not 4^n";
}

TEST(AddBiDomainTest, RandomProgramsMatchDense) {
  // Differential test mirroring RandomProgramTest, dense vs ADD.
  Rng R(808);
  for (int Round = 0; Round != 10; ++Round) {
    std::string Body;
    for (int S = 0; S != 4; ++S) {
      switch (R.below(4)) {
      case 0:
        Body += "a := b;\n";
        break;
      case 1:
        Body += "b ~ bernoulli(" + std::to_string(R.uniform()) + ");\n";
        break;
      case 2:
        Body += "if prob(0.5) { a := true; } else { c := a; }\n";
        break;
      default:
        Body += "while prob(0.5) { c ~ bernoulli(0.5); }\n";
        break;
      }
    }
    std::string Source = "bool a, b, c; proc main() { " + Body + " }";
    expectDenseAddAgreement(Source.c_str());
  }
}
