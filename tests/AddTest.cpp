//===- tests/AddTest.cpp - ADD manager and ADD-backed BI tests ------------===//

#include "add/Add.h"
#include "cfg/HyperGraph.h"
#include "core/Solver.h"
#include "domains/AddBiDomain.h"
#include "domains/BiDomain.h"
#include "lang/Parser.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace pmaf;
using namespace pmaf::add;
using namespace pmaf::core;
using namespace pmaf::domains;

//===----------------------------------------------------------------------===//
// AddManager
//===----------------------------------------------------------------------===//

TEST(AddManagerTest, TerminalsAreHashConsed) {
  AddManager Mgr;
  EXPECT_EQ(Mgr.terminal(0.25), Mgr.terminal(0.25));
  EXPECT_NE(Mgr.terminal(0.25), Mgr.terminal(0.5));
  EXPECT_EQ(Mgr.zero(), Mgr.terminal(0.0));
  EXPECT_EQ(Mgr.one(), Mgr.terminal(1.0));
  EXPECT_DOUBLE_EQ(Mgr.terminalValue(Mgr.terminal(3.5)), 3.5);
}

TEST(AddManagerTest, ReductionRule) {
  AddManager Mgr;
  // A node with equal children collapses to the child.
  EXPECT_EQ(Mgr.makeNode(0, Mgr.one(), Mgr.one()), Mgr.one());
  // Identical nodes share structure.
  NodeRef A = Mgr.makeNode(1, Mgr.zero(), Mgr.one());
  NodeRef B = Mgr.makeNode(1, Mgr.zero(), Mgr.one());
  EXPECT_EQ(A, B);
}

TEST(AddManagerTest, ApplyPointwise) {
  AddManager Mgr;
  NodeRef X = Mgr.indicator(0);
  NodeRef Y = Mgr.indicator(1);
  NodeRef Sum = Mgr.apply(Op::Add, X, Y);
  auto At = [&](bool VX, bool VY, NodeRef F) {
    return Mgr.evaluate(F, [&](unsigned Level) {
      return Level == 0 ? VX : VY;
    });
  };
  EXPECT_DOUBLE_EQ(At(false, false, Sum), 0.0);
  EXPECT_DOUBLE_EQ(At(true, false, Sum), 1.0);
  EXPECT_DOUBLE_EQ(At(true, true, Sum), 2.0);
  NodeRef Prod = Mgr.apply(Op::Mul, X, Y);
  EXPECT_DOUBLE_EQ(At(true, false, Prod), 0.0);
  EXPECT_DOUBLE_EQ(At(true, true, Prod), 1.0);
  NodeRef MaxF = Mgr.apply(Op::Max, X, Y);
  EXPECT_DOUBLE_EQ(At(false, true, MaxF), 1.0);
}

TEST(AddManagerTest, AffineAndExtrema) {
  AddManager Mgr;
  NodeRef X = Mgr.indicator(0);
  NodeRef F = Mgr.affine(X, 3.0, 1.0); // 3x + 1 in {1, 4}
  EXPECT_DOUBLE_EQ(Mgr.minTerminal(F), 1.0);
  EXPECT_DOUBLE_EQ(Mgr.maxTerminal(F), 4.0);
  EXPECT_DOUBLE_EQ(Mgr.maxAbsDiff(F, Mgr.one()), 3.0);
}

TEST(AddManagerTest, SumOutHandlesAbsentLevels) {
  AddManager Mgr;
  NodeRef X = Mgr.indicator(0);
  // sum over level 1 (absent): doubles the function.
  NodeRef S1 = Mgr.sumOut(X, {1});
  EXPECT_DOUBLE_EQ(
      Mgr.evaluate(S1, [](unsigned) { return true; }), 2.0);
  // sum over level 0 (present): f(0) + f(1) = 1.
  NodeRef S0 = Mgr.sumOut(X, {0});
  EXPECT_TRUE(Mgr.isTerminal(S0));
  EXPECT_DOUBLE_EQ(Mgr.terminalValue(S0), 1.0);
  // sum over both: 2.
  NodeRef S01 = Mgr.sumOut(X, {0, 1});
  EXPECT_DOUBLE_EQ(Mgr.terminalValue(S01), 2.0);
}

TEST(AddManagerTest, RenameMonotone) {
  AddManager Mgr;
  NodeRef F = Mgr.apply(Op::Add, Mgr.indicator(0),
                        Mgr.scale(Mgr.indicator(2), 2.0));
  NodeRef G = Mgr.rename(F, [](unsigned Level) { return Level + 1; });
  EXPECT_DOUBLE_EQ(Mgr.evaluate(G,
                                [](unsigned Level) { return Level == 1; }),
                   1.0);
  EXPECT_DOUBLE_EQ(Mgr.evaluate(G,
                                [](unsigned Level) { return Level == 3; }),
                   2.0);
}

TEST(AddManagerTest, SharingBeatsEnumeration) {
  // The parity-like function sum of 16 indicators has a linear-size ADD.
  AddManager Mgr;
  NodeRef F = Mgr.zero();
  for (unsigned I = 0; I != 16; ++I)
    F = Mgr.apply(Op::Add, F, Mgr.indicator(I));
  EXPECT_LT(Mgr.nodeCount(F), 200u); // Far below 2^16.
  EXPECT_DOUBLE_EQ(Mgr.maxTerminal(F), 16.0);
}

//===----------------------------------------------------------------------===//
// AddBiDomain vs dense BiDomain: structural cross-validation
//===----------------------------------------------------------------------===//

namespace {

/// Runs both BI implementations on a program and checks the main summary
/// matrices agree entrywise.
void expectDenseAddAgreement(const char *Source) {
  auto Prog = lang::parseProgramOrDie(Source);
  BoolStateSpace Space(*Prog);
  cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
  SolverOptions Opts;
  Opts.UseWidening = false;
  unsigned Entry = Graph.proc(Prog->findProc("main")).Entry;

  BiDomain Dense(Space);
  auto DenseResult = solve(Graph, Dense, Opts);

  AddBiDomain Compact(Space);
  auto CompactResult = solve(Graph, Compact, Opts);

  Matrix Expanded = Compact.toMatrix(CompactResult.Values[Entry]);
  EXPECT_LE(Expanded.maxAbsDiff(DenseResult.Values[Entry]), 1e-9)
      << Source;
}

} // namespace

TEST(AddBiDomainTest, KernelsMatchDense) {
  expectDenseAddAgreement("bool a, b; proc main() { a := true; }");
  expectDenseAddAgreement("bool a, b; proc main() { a := b; }");
  expectDenseAddAgreement(
      "bool a, b; proc main() { a ~ bernoulli(0.3); }");
  expectDenseAddAgreement(
      "bool a, b; proc main() { observe(a || b); }");
  expectDenseAddAgreement(
      "bool a, b; proc main() { skip; }");
}

TEST(AddBiDomainTest, ControlFlowMatchesDense) {
  expectDenseAddAgreement(R"(
    bool a, b;
    proc main() {
      a ~ bernoulli(0.5);
      if (a) { b := true; } else { b ~ bernoulli(0.25); }
    }
  )");
  expectDenseAddAgreement(R"(
    bool a, b;
    proc main() {
      if prob(0.7) { a := true; } else { a := false; }
      if star { b := a; } else { b := true; }
    }
  )");
}

TEST(AddBiDomainTest, Figure1aMatchesDense) {
  expectDenseAddAgreement(R"(
    bool b1, b2;
    proc main() {
      b1 ~ bernoulli(0.5);
      b2 ~ bernoulli(0.5);
      while (!b1 && !b2) {
        b1 ~ bernoulli(0.5);
        b2 ~ bernoulli(0.5);
      }
    }
  )");
}

TEST(AddBiDomainTest, RecursionMatchesDense) {
  expectDenseAddAgreement(R"(
    bool b;
    proc main() {
      b ~ bernoulli(0.5);
      if (b) { main(); }
    }
  )");
}

TEST(AddBiDomainTest, PosteriorMatchesDense) {
  auto Prog = lang::parseProgramOrDie(R"(
    bool b1, b2;
    proc main() {
      b1 ~ bernoulli(0.5);
      if prob(0.5) { b2 := b1; } else { b2 ~ bernoulli(0.5); }
      observe(b1 || b2);
    }
  )");
  BoolStateSpace Space(*Prog);
  cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
  SolverOptions Opts;
  Opts.UseWidening = false;
  unsigned Entry = Graph.proc(0).Entry;
  AddBiDomain Compact(Space);
  auto Result = solve(Graph, Compact, Opts);
  std::vector<double> Prior = {1.0, 0.0, 0.0, 0.0};
  std::vector<double> Post =
      Compact.posterior(Result.Values[Entry], Prior);
  EXPECT_NEAR(Post[0], 0.0, 1e-12);
  EXPECT_NEAR(Post[1], 0.125, 1e-12);
  EXPECT_NEAR(Post[2], 0.125, 1e-12);
  EXPECT_NEAR(Post[3], 0.375, 1e-12);
}

TEST(AddBiDomainTest, IndependentVariablesStayCompact) {
  // n independent coin flips: the dense transformer has 4^n entries, the
  // ADD stays linear in n.
  std::string Decls = "bool";
  std::string Body;
  const unsigned N = 10;
  for (unsigned I = 0; I != N; ++I) {
    Decls += std::string(I ? "," : "") + " v" + std::to_string(I);
    Body += "v" + std::to_string(I) + " ~ bernoulli(0.5);\n";
  }
  std::string Source = Decls + "; proc main() { " + Body + " }";
  auto Prog = lang::parseProgramOrDie(Source);
  BoolStateSpace Space(*Prog);
  cfg::ProgramGraph Graph = cfg::ProgramGraph::build(*Prog);
  SolverOptions Opts;
  Opts.UseWidening = false;
  AddBiDomain Compact(Space);
  auto Result = solve(Graph, Compact, Opts);
  size_t Size = Compact.nodeCount(Result.Values[Graph.proc(0).Entry]);
  EXPECT_LT(Size, 64u) << "diagram should be linear in n, not 4^n";
}

TEST(AddBiDomainTest, RandomProgramsMatchDense) {
  // Differential test mirroring RandomProgramTest, dense vs ADD.
  Rng R(808);
  for (int Round = 0; Round != 10; ++Round) {
    std::string Body;
    for (int S = 0; S != 4; ++S) {
      switch (R.below(4)) {
      case 0:
        Body += "a := b;\n";
        break;
      case 1:
        Body += "b ~ bernoulli(" + std::to_string(R.uniform()) + ");\n";
        break;
      case 2:
        Body += "if prob(0.5) { a := true; } else { c := a; }\n";
        break;
      default:
        Body += "while prob(0.5) { c ~ bernoulli(0.5); }\n";
        break;
      }
    }
    std::string Source = "bool a, b, c; proc main() { " + Body + " }";
    expectDenseAddAgreement(Source.c_str());
  }
}
