//===- tests/LinalgTest.cpp - Matrix unit tests ---------------------------===//

#include "linalg/Matrix.h"

#include <gtest/gtest.h>

using namespace pmaf;

TEST(MatrixTest, IdentityIsMultiplicativeUnit) {
  Matrix A(2, 2);
  A.at(0, 0) = 0.25;
  A.at(0, 1) = 0.75;
  A.at(1, 0) = 0.5;
  A.at(1, 1) = 0.5;
  Matrix I = Matrix::identity(2);
  EXPECT_EQ(A * I, A);
  EXPECT_EQ(I * A, A);
}

TEST(MatrixTest, ProductMatchesHandComputation) {
  Matrix A(2, 3), B(3, 2);
  double AData[2][3] = {{1, 2, 3}, {4, 5, 6}};
  double BData[3][2] = {{7, 8}, {9, 10}, {11, 12}};
  for (size_t I = 0; I != 2; ++I)
    for (size_t J = 0; J != 3; ++J)
      A.at(I, J) = AData[I][J];
  for (size_t I = 0; I != 3; ++I)
    for (size_t J = 0; J != 2; ++J)
      B.at(I, J) = BData[I][J];
  Matrix C = A * B;
  EXPECT_DOUBLE_EQ(C.at(0, 0), 58);
  EXPECT_DOUBLE_EQ(C.at(0, 1), 64);
  EXPECT_DOUBLE_EQ(C.at(1, 0), 139);
  EXPECT_DOUBLE_EQ(C.at(1, 1), 154);
}

TEST(MatrixTest, StochasticProductStaysStochastic) {
  // Product of row-stochastic matrices is row-stochastic.
  Matrix A(2, 2), B(2, 2);
  A.at(0, 0) = 0.3;
  A.at(0, 1) = 0.7;
  A.at(1, 0) = 0.9;
  A.at(1, 1) = 0.1;
  B.at(0, 0) = 0.5;
  B.at(0, 1) = 0.5;
  B.at(1, 0) = 0.2;
  B.at(1, 1) = 0.8;
  Matrix C = A * B;
  EXPECT_NEAR(C.rowSum(0), 1.0, 1e-12);
  EXPECT_NEAR(C.rowSum(1), 1.0, 1e-12);
}

TEST(MatrixTest, PointwiseOps) {
  Matrix A(1, 2), B(1, 2);
  A.at(0, 0) = 1;
  A.at(0, 1) = 4;
  B.at(0, 0) = 2;
  B.at(0, 1) = 3;
  Matrix Min = A.pointwiseMin(B);
  Matrix Max = A.pointwiseMax(B);
  EXPECT_DOUBLE_EQ(Min.at(0, 0), 1);
  EXPECT_DOUBLE_EQ(Min.at(0, 1), 3);
  EXPECT_DOUBLE_EQ(Max.at(0, 0), 2);
  EXPECT_DOUBLE_EQ(Max.at(0, 1), 4);
  EXPECT_TRUE(Min.leqAll(A));
  EXPECT_TRUE(Min.leqAll(B));
  EXPECT_TRUE(A.leqAll(Max));
  EXPECT_FALSE(Max.leqAll(Min));
}

TEST(MatrixTest, ScaledAndSum) {
  Matrix A = Matrix::identity(2);
  Matrix B = A.scaled(0.25) + A.scaled(0.75);
  EXPECT_EQ(B, A);
  EXPECT_DOUBLE_EQ(A.scaled(2.0).at(0, 0), 2.0);
}

TEST(MatrixTest, MaxAbsDiff) {
  Matrix A = Matrix::identity(3);
  Matrix B = A;
  B.at(2, 0) = 0.125;
  EXPECT_DOUBLE_EQ(A.maxAbsDiff(B), 0.125);
  EXPECT_DOUBLE_EQ(A.maxAbsDiff(A), 0.0);
}

TEST(MatrixTest, ApplyToRowVector) {
  // Posterior computation: prior row vector times transformer matrix.
  Matrix M(2, 2);
  M.at(0, 0) = 0.1;
  M.at(0, 1) = 0.9;
  M.at(1, 0) = 0.6;
  M.at(1, 1) = 0.4;
  std::vector<double> Prior = {0.5, 0.5};
  std::vector<double> Post = M.applyToRowVector(Prior);
  EXPECT_NEAR(Post[0], 0.35, 1e-12);
  EXPECT_NEAR(Post[1], 0.65, 1e-12);
}

TEST(MatrixTest, ZeroIsAdditiveUnitAndAbsorbs) {
  Matrix Z = Matrix::zero(2, 2);
  Matrix A = Matrix::identity(2);
  EXPECT_EQ(A + Z, A);
  EXPECT_EQ(A * Z, Z);
  EXPECT_EQ(Z * A, Z);
}
